// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The columnar sealed-block format, v2 (docs/STORAGE.md has the byte
// diagram). Where v1 stores one CRC-framed row-oriented record per event,
// v2 stores each name run as four contiguous per-column buffers —
//
//   starts     block-restarting delta encoding: the block's first start as
//              a raw i64, then LEB128 deltas (runs are sorted by start, so
//              deltas are non-negative and short)
//   durations  zigzag LEB128 (end - start; the codec never assumes a sign)
//   locations  fixed-width u32 LocId per row into the segment's location
//              dictionary (a serialized core::LocationTable snapshot)
//   attrs      per row: LEB128 pair count, then (key, value) references
//              into the segment's string dictionary
//
// — and the footer carries, per block of kV2BlockRows rows, a zone map
// (min/max start, min/max location id, a name bitmap, and the byte offset
// of the block's slice in each variable-width column). A window query
// binary-searches the zone maps and never touches the bytes of a block
// whose [min_start, max_start] range misses the window; a per-name query
// touches only the runs of that name. Block-restarting deltas make every
// block independently decodable, so skipped means skipped.
//
// Integrity: the footer (dictionaries + zone maps) rides the sealed
// trailer's CRC exactly like v1; each run's column region additionally
// carries its own CRC32C, checked by verify_store (the query path is
// bounds-checked but does not re-checksum — see docs/STORAGE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/event.h"

namespace grca::storage {

class SegmentReader;

/// Rows per v2 block (one zone-map entry each). Deliberately finer than
/// v1's 64-frame checkpoints: a block is the unit a query must walk even
/// when it wants one row (variable-width columns decode from the block
/// start), and columnar rows are cheap enough that 16-row blocks keep the
/// zone maps ~3 bytes/row while cutting the per-query walk 4x.
inline constexpr std::uint32_t kV2BlockRows = 16;

/// Zone map + column slice directory for one block of kV2BlockRows rows.
struct V2Block {
  util::TimeSec min_start = 0;  // first row's start (rows sorted by start)
  util::TimeSec max_start = 0;  // last row's start
  core::LocId loc_min = 0;      // smallest / largest location id in the
  core::LocId loc_max = 0;      //   block (dictionary ids, dense from 0)
  std::uint64_t name_bitmap = 0;  // 1 << (name_id % 64); single-name blocks
                                  // today, defined as a union for forward
                                  // compatibility with mixed-name blocks
  // Byte offsets of this block's slice, relative to the respective column
  // buffer's start. The fixed-width location column needs none (row * 4).
  std::uint64_t starts_off = 0;
  std::uint64_t durs_off = 0;
  std::uint64_t attrs_off = 0;
};

/// Footer directory entry for one name's columnar run.
struct V2Run {
  std::uint32_t name_id = 0;       // into V2Footer::names
  std::uint64_t count = 0;         // rows
  util::TimeSec max_duration = 0;  // longest instance (query lower bound)
  std::uint64_t region_off = 0;    // absolute file offset of the region
  // Column buffer lengths; the region is [starts][durations][locs][attrs]
  // and region_len() must tile the file between neighbouring runs.
  std::uint64_t starts_len = 0;
  std::uint64_t durs_len = 0;
  std::uint64_t locs_len = 0;  // always 4 * count
  std::uint64_t attrs_len = 0;
  std::uint32_t region_crc = 0;  // CRC32C over the whole column region
  std::uint32_t block_rows = kV2BlockRows;
  std::vector<V2Block> blocks;  // ceil(count / block_rows) zone maps

  std::uint64_t region_len() const noexcept {
    return starts_len + durs_len + locs_len + attrs_len;
  }
};

struct V2Footer {
  util::TimeSec watermark = 0;
  std::uint64_t event_count = 0;
  std::vector<std::string> names;          // sorted; name_id = index
  std::vector<core::Location> locations;   // LocationTable snapshot, id order
  std::vector<std::string> strings;        // attr key/value dictionary
  std::vector<V2Run> runs;                 // name_id order
};

/// Builds the full byte image of a v2 sealed segment. Same contract as the
/// v1 builder: `groups` sorted by name, each group's instances sorted by
/// start, and row order inside a group is preserved verbatim (the basis of
/// byte-identical reads across formats).
std::vector<std::uint8_t> encode_sealed_segment_v2(
    std::uint64_t seq, util::TimeSec watermark,
    const std::vector<
        std::pair<std::string, std::vector<const core::EventInstance*>>>&
        groups);

/// Serializes the v2 footer payload (what the sealed trailer checksums).
std::vector<std::uint8_t> encode_v2_footer(const V2Footer& footer);

/// Decodes a v2 footer payload; throws StorageError on any structural
/// inconsistency (bad dictionary ids, non-monotone zone maps, lengths that
/// do not tile).
V2Footer decode_v2_footer(std::span<const std::uint8_t> payload);

/// Decodes rows [first, last) of `run` in stored order, passing each
/// materialized event to `sink(row_index, event, location_dict_id)` — the
/// third argument is the row's id into V2Footer::locations, so callers can
/// translate via a precomputed dictionary map instead of re-hashing the
/// Location. When `want` is non-empty, rows in range for which it returns
/// false are skipped exactly like out-of-range rows: their variable-width
/// cursors advance but no event is built (the basis of filter-before-
/// materialize queries). Bounds-checked: corrupt column bytes throw
/// StorageError, never fault. `segment_bytes` is the whole mapped file.
void decode_v2_rows(std::span<const std::uint8_t> segment_bytes,
                    const V2Footer& footer, const V2Run& run,
                    std::uint64_t first, std::uint64_t last,
                    const std::function<void(std::uint64_t,
                                             core::EventInstance,
                                             core::LocId)>& sink,
                    const std::function<bool(std::uint64_t)>& want = {});

/// Decodes only the timestamp columns of blocks [first_block, last_block)
/// into caller-provided contiguous arrays indexed by row: starts[i] and
/// ends[i] (= start + duration). This is the cheap tier a window query
/// scans allocation-free before materializing any row.
void decode_v2_timestamps(std::span<const std::uint8_t> segment_bytes,
                          const V2Run& run, std::size_t first_block,
                          std::size_t last_block, util::TimeSec* starts,
                          util::TimeSec* ends);

}  // namespace grca::storage
