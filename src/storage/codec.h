// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The binary codec for EventInstance and the CRC32C frame that wraps every
// record on disk (docs/STORAGE.md has the byte-level diagram).
//
// Payload layout (all integers little-endian, strings length-prefixed):
//
//   u32 name_len, name bytes
//   i64 when.start, i64 when.end
//   u8  location type
//   u32 a_len, a | u32 b_len, b | u32 c_len, c
//   u32 attr_count, then per attr (map order = sorted keys, so encoding is
//   deterministic): u32 key_len, key | u32 value_len, value
//
// `where_id` is cache bookkeeping and is deliberately NOT serialized —
// decoded instances come back with kInvalidLocId, exactly like an instance
// the in-memory store has not interned yet.
//
// Frame layout: u32 payload_len | u32 crc32c(payload) | payload. A frame is
// accepted only when the length is sane, the bytes are present and the
// checksum matches; anything else is a torn or corrupt tail.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/event.h"

namespace grca::storage {

/// Hard upper bound on one frame's payload (defense against interpreting
/// corrupt length fields as multi-gigabyte allocations).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// Bytes of frame overhead ahead of the payload (length + checksum).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Appends the payload encoding of `e` to `out` (no frame).
void encode_event(const core::EventInstance& e, std::vector<std::uint8_t>& out);

/// Decodes one payload produced by encode_event. Throws StorageError when
/// the bytes are malformed (truncated field, unknown location type,
/// trailing garbage).
core::EventInstance decode_event(std::span<const std::uint8_t> payload);

/// Appends a full frame (header + payload encoding of `e`) to `out`.
void encode_frame(const core::EventInstance& e, std::vector<std::uint8_t>& out);

/// The result of probing one frame in a byte stream.
struct FrameView {
  std::span<const std::uint8_t> payload;  // checksum-verified payload bytes
  std::size_t frame_bytes = 0;            // total bytes consumed (hdr+payload)
};

/// Probes `bytes` for a valid frame at offset 0. Returns nullopt when the
/// bytes do not start with a complete, checksum-valid frame — the torn-tail
/// signal recovery keys off; never throws.
std::optional<FrameView> probe_frame(std::span<const std::uint8_t> bytes) noexcept;

// ---- primitive little-endian writers/readers shared with the segment
// footer codec ----

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v);
void put_string(std::vector<std::uint8_t>& out, std::string_view s);

/// LEB128 (7 bits per byte, little-endian groups) — the v2 columnar delta
/// and dictionary-reference encoding. At most 10 bytes per value.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Zigzag + LEB128 for signed values (durations may be negative: the codec
/// never assumes end >= start).
void put_varint_signed(std::vector<std::uint8_t>& out, std::int64_t v);

/// Bounds-checked little-endian reader over a byte span; every getter
/// throws StorageError past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::string string();
  std::uint64_t varint();
  std::int64_t varint_signed();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace grca::storage
