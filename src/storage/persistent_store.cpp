// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "storage/persistent_store.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/codec.h"
#include "storage/event_log.h"
#include "util/error.h"

namespace grca::storage {

namespace {

/// Decodes exactly `count` frames starting at absolute file offset `at`,
/// passing each to `sink`. Sealed segments are CRC-complete by
/// construction, so an invalid frame here is corruption.
template <typename Sink>
void decode_run_frames(const SegmentReader& seg, std::uint64_t at,
                       std::uint64_t count, Sink&& sink) {
  std::span<const std::uint8_t> bytes = seg.bytes();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::optional<FrameView> frame =
        probe_frame(bytes.subspan(at, seg.frames_end() - at));
    if (!frame) {
      throw StorageError("storage: corrupt frame in sealed segment " +
                         seg.path().string() + " at offset " +
                         std::to_string(at));
    }
    sink(decode_event(frame->payload));
    at += frame->frame_bytes;
  }
}

}  // namespace

PersistentEventStore PersistentEventStore::open(
    const std::filesystem::path& dir) {
  obs::ScopedSpan span("store-open");
  PersistentEventStore store;
  store.dir_ = dir;

  // Map every sealed segment; a seg-*.grseg without a valid footer lost
  // its seal to corruption, which open() refuses (verify/compact are the
  // repair tools).
  for (const std::filesystem::path& path : list_segments(dir)) {
    auto seg = std::make_unique<SegmentReader>(SegmentReader::open(path));
    if (!seg->sealed()) {
      throw StorageError("storage: segment " + path.string() +
                         " has no valid footer (damaged seal)");
    }
    store.stats_.mapped_bytes += seg->size();
    if (seg->format_version() == kFormatV2) ++store.stats_.v2_segments;
    store.watermark_ = std::max(store.watermark_, seg->sealed_watermark());
    store.segments_.push_back(std::move(seg));
  }
  store.stats_.sealed_segments = store.segments_.size();

  // Translate every v2 segment's location dictionary into this store's
  // table once, up front. Row materialization then resolves where_id with
  // one indexed load instead of hashing the Location per row.
  std::unordered_map<const SegmentReader*, const core::LocId*> loc_map_of;
  store.v2_loc_maps_.reserve(store.stats_.v2_segments);
  for (const auto& seg : store.segments_) {
    if (seg->format_version() != kFormatV2) continue;
    const V2Footer& footer = seg->v2_footer();
    std::vector<core::LocId> map;
    map.reserve(footer.locations.size());
    for (const core::Location& loc : footer.locations) {
      map.push_back(store.locations_->intern(loc));
    }
    store.v2_loc_maps_.push_back(std::move(map));
    loc_map_of.emplace(seg.get(), store.v2_loc_maps_.back().data());
  }

  // Recover the WAL read-only: adopt the valid frame prefix, skip (and
  // count) the torn tail. Damage before the first frame means nothing is
  // recoverable.
  std::vector<core::EventInstance> wal_events;
  std::filesystem::path wal_path = dir / kWalName;
  if (std::filesystem::exists(wal_path)) {
    store.stats_.wal_present = true;
    try {
      SegmentReader wal = SegmentReader::open(wal_path);
      SegmentReader::Scan scan = wal.scan_frames();
      wal_events = std::move(scan.events);
      store.stats_.recovered_bytes =
          scan.valid_bytes > kSegmentHeaderBytes
              ? scan.valid_bytes - kSegmentHeaderBytes
              : 0;
      store.stats_.truncated_bytes = scan.dropped_bytes;
    } catch (const StorageError&) {
      store.stats_.truncated_bytes = std::filesystem::file_size(wal_path);
    }
    store.stats_.wal_events = wal_events.size();
  }
  if (store.segments_.empty() && !store.stats_.wal_present) {
    throw StorageError("storage: no event log at " + dir.string() +
                       " (no segments, no WAL)");
  }

  // Per-name contributions, in segment-sequence order. std::map keeps
  // names_ sorted for free. A run reference is format-tagged: exactly one
  // of v1/v2 is set.
  struct RunRef {
    const SegmentReader* seg = nullptr;
    const NameRun* v1 = nullptr;
    const V2Run* v2 = nullptr;

    std::uint64_t count() const noexcept {
      return v2 ? v2->count : v1->count;
    }
    util::TimeSec max_duration() const noexcept {
      return v2 ? v2->max_duration : v1->max_duration;
    }
  };
  struct Contribution {
    std::vector<RunRef> runs;
    std::vector<core::EventInstance> wal_tail;
  };
  std::map<std::string, Contribution> by_name;
  for (const auto& seg : store.segments_) {
    if (seg->format_version() == kFormatV2) {
      const V2Footer& footer = seg->v2_footer();
      for (const V2Run& run : footer.runs) {
        by_name[footer.names[run.name_id]].runs.push_back(
            RunRef{seg.get(), nullptr, &run});
      }
    } else {
      for (const NameRun& run : seg->footer().runs) {
        by_name[run.name].runs.push_back(RunRef{seg.get(), &run, nullptr});
      }
    }
  }
  for (core::EventInstance& e : wal_events) {
    by_name[e.name].wal_tail.push_back(std::move(e));
  }

  for (auto& [name, contrib] : by_name) {
    Bucket bucket;
    for (const RunRef& run : contrib.runs) {
      bucket.max_duration = std::max(bucket.max_duration,
                                     run.max_duration());
      store.total_ += run.count();
    }
    store.total_ += contrib.wal_tail.size();
    if (contrib.runs.size() == 1 && contrib.wal_tail.empty() &&
        contrib.runs[0].v1) {
      // Single sealed v1 run: serve it lazily straight off the mapping.
      auto lazy = std::make_unique<LazyRun>();
      lazy->seg = contrib.runs[0].seg;
      lazy->run = contrib.runs[0].v1;
      lazy->block_count = lazy->run->blocks.size();
      lazy->slots =
          std::make_unique<core::EventInstance[]>(lazy->slot_count());
      lazy->block_ready =
          std::make_unique<std::atomic<bool>[]>(lazy->block_count);
      for (std::size_t b = 0; b < lazy->block_count; ++b) {
        lazy->block_ready[b].store(false, std::memory_order_relaxed);
      }
      bucket.lazy = lazy.get();
      store.lazy_runs_.push_back(std::move(lazy));
    } else if (contrib.runs.size() == 1 && contrib.wal_tail.empty()) {
      // Single sealed v2 run: two-tier lazy columnar reader.
      auto lazy = std::make_unique<LazyV2Run>();
      lazy->seg = contrib.runs[0].seg;
      lazy->run = contrib.runs[0].v2;
      lazy->loc_map = loc_map_of.at(lazy->seg);
      lazy->block_count = lazy->run->blocks.size();
      lazy->starts = std::make_unique<util::TimeSec[]>(lazy->slot_count());
      lazy->ends = std::make_unique<util::TimeSec[]>(lazy->slot_count());
      lazy->slots =
          std::make_unique<core::EventInstance[]>(lazy->slot_count());
      lazy->ts_ready =
          std::make_unique<std::atomic<bool>[]>(lazy->block_count);
      for (std::size_t b = 0; b < lazy->block_count; ++b) {
        lazy->ts_ready[b].store(false, std::memory_order_relaxed);
      }
      lazy->row_ready =
          std::make_unique<std::atomic<bool>[]>(lazy->slot_count());
      for (std::size_t r = 0; r < lazy->slot_count(); ++r) {
        lazy->row_ready[r].store(false, std::memory_order_relaxed);
      }
      bucket.lazy2 = lazy.get();
      store.lazy_v2_runs_.push_back(std::move(lazy));
    } else {
      // Merged bucket: decode everything now, concatenated in sequence
      // order with the WAL tail last, then stable-sort by start — the
      // in-memory store's exact bucket order (ties keep append order).
      for (const RunRef& run : contrib.runs) {
        if (run.v2) {
          decode_v2_rows(run.seg->bytes(), run.seg->v2_footer(), *run.v2, 0,
                         run.v2->count,
                         [&](std::uint64_t, core::EventInstance e,
                             core::LocId) {
                           bucket.merged.push_back(std::move(e));
                         });
        } else {
          decode_run_frames(*run.seg, run.v1->first_offset, run.v1->count,
                            [&](core::EventInstance e) {
                              bucket.merged.push_back(std::move(e));
                            });
        }
      }
      for (core::EventInstance& e : contrib.wal_tail) {
        bucket.max_duration =
            std::max(bucket.max_duration, e.when.duration());
        bucket.merged.push_back(std::move(e));
      }
      std::stable_sort(bucket.merged.begin(), bucket.merged.end(),
                       [](const core::EventInstance& x,
                          const core::EventInstance& y) {
                         return x.when.start < y.when.start;
                       });
      for (core::EventInstance& e : bucket.merged) {
        e.where_id = store.locations_->intern(e.where);
      }
    }
    store.names_.push_back(name);
    store.buckets_.emplace(name, std::move(bucket));
  }
  store.stats_.event_count = store.total_;

  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    reg->counter("grca_storage_opens_total").inc();
    reg->gauge("grca_storage_segments")
        .set(static_cast<double>(store.stats_.sealed_segments));
    reg->gauge("grca_storage_mapped_bytes")
        .set(static_cast<double>(store.stats_.mapped_bytes));
    if (store.stats_.recovered_bytes > 0) {
      reg->counter("grca_storage_recovered_bytes")
          .inc(store.stats_.recovered_bytes);
    }
    if (store.stats_.truncated_bytes > 0) {
      reg->counter("grca_storage_truncated_bytes")
          .inc(store.stats_.truncated_bytes);
    }
  }
  return store;
}

void PersistentEventStore::ensure_blocks(const LazyRun& lazy,
                                         std::size_t first_block,
                                         std::size_t last_block) const {
  // Fast path: every touched block already materialized (acquire pairs
  // with the release below, so the slots it guards are visible).
  bool all_ready = true;
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (!lazy.block_ready[b].load(std::memory_order_acquire)) {
      all_ready = false;
      break;
    }
  }
  if (all_ready) return;

  LazyRun& mut = const_cast<LazyRun&>(lazy);
  std::lock_guard<std::mutex> lock(mut.decode_mutex);
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (lazy.block_ready[b].load(std::memory_order_relaxed)) continue;
    std::size_t slot = b * lazy.run->block_frames;
    std::uint64_t frames =
        std::min<std::uint64_t>(lazy.run->block_frames,
                                lazy.run->count - slot);
    decode_run_frames(*lazy.seg, lazy.run->blocks[b].offset, frames,
                      [&](core::EventInstance e) {
                        e.where_id = locations_->intern(e.where);
                        mut.slots[slot++] = std::move(e);
                      });
    mut.block_ready[b].store(true, std::memory_order_release);
  }
}

std::pair<std::size_t, std::size_t> PersistentEventStore::candidate_slots(
    const LazyRun& lazy, util::TimeSec lo, util::TimeSec to) const {
  const std::vector<BlockEntry>& blocks = lazy.run->blocks;
  auto start_less = [](const BlockEntry& b, util::TimeSec v) {
    return b.first_start < v;
  };
  auto start_greater = [](util::TimeSec v, const BlockEntry& b) {
    return v < b.first_start;
  };
  // The block holding the first start >= lo may begin before lo, so step
  // one block back from the partition point.
  std::size_t b0 = static_cast<std::size_t>(
      std::lower_bound(blocks.begin(), blocks.end(), lo, start_less) -
      blocks.begin());
  if (b0 > 0) --b0;
  // Blocks whose first start already exceeds `to` cannot contribute.
  std::size_t b1 = static_cast<std::size_t>(
      std::upper_bound(blocks.begin(), blocks.end(), to, start_greater) -
      blocks.begin());
  if (b1 <= b0) return {0, 0};
  ensure_blocks(lazy, b0, b1);
  std::size_t first = b0 * lazy.run->block_frames;
  std::size_t last = std::min<std::size_t>(lazy.slot_count(),
                                           b1 * lazy.run->block_frames);
  return {first, last};
}

void PersistentEventStore::ensure_v2_timestamps(
    const LazyV2Run& lazy, std::size_t first_block,
    std::size_t last_block) const {
  bool all_ready = true;
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (!lazy.ts_ready[b].load(std::memory_order_acquire)) {
      all_ready = false;
      break;
    }
  }
  if (all_ready) return;

  LazyV2Run& mut = const_cast<LazyV2Run&>(lazy);
  std::lock_guard<std::mutex> lock(mut.decode_mutex);
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (lazy.ts_ready[b].load(std::memory_order_relaxed)) continue;
    decode_v2_timestamps(lazy.seg->bytes(), *lazy.run, b, b + 1,
                         mut.starts.get(), mut.ends.get());
    mut.ts_ready[b].store(true, std::memory_order_release);
  }
}

void PersistentEventStore::ensure_v2_rows(const LazyV2Run& lazy,
                                          std::size_t first,
                                          std::size_t last,
                                          util::TimeSec min_end) const {
  if (first >= last) return;
  // A row is needed only when its end can overlap the caller's window
  // (ends[] comes from tier 1, so the filter is free). The default min_end
  // disables the filter without reading ends[] — all() has no timestamps
  // decoded yet.
  const bool filtered =
      min_end != std::numeric_limits<util::TimeSec>::min();
  const util::TimeSec* ends = lazy.ends.get();
  auto needed = [&](std::size_t r) {
    return !filtered || ends[r] >= min_end;
  };
  bool all_ready = true;
  for (std::size_t r = first; r < last; ++r) {
    if (needed(r) && !lazy.row_ready[r].load(std::memory_order_acquire)) {
      all_ready = false;
      break;
    }
  }
  if (all_ready) return;

  LazyV2Run& mut = const_cast<LazyV2Run&>(lazy);
  std::lock_guard<std::mutex> lock(mut.decode_mutex);
  // One pass over [first, last): the decoder materializes exactly the
  // needed, not-yet-ready rows and advances cursors past the rest.
  // Already-materialized rows are never rewritten (readers hold pointers
  // into slots), and ready flags release only after their slot is written.
  std::vector<std::uint32_t> done;
  decode_v2_rows(
      lazy.seg->bytes(), lazy.seg->v2_footer(), *lazy.run, first, last,
      [&](std::uint64_t row, core::EventInstance e, core::LocId loc) {
        e.where_id = lazy.loc_map[loc];
        mut.slots[row] = std::move(e);
        done.push_back(static_cast<std::uint32_t>(row));
      },
      [&](std::uint64_t row) {
        return needed(row) &&
               !lazy.row_ready[row].load(std::memory_order_relaxed);
      });
  for (std::uint32_t row : done) {
    mut.row_ready[row].store(true, std::memory_order_release);
  }
  query_stats_->rows_materialized.fetch_add(done.size(),
                                            std::memory_order_relaxed);
}

std::size_t PersistentEventStore::query_into(
    const std::string& name, util::TimeSec from, util::TimeSec to,
    std::vector<const core::EventInstance*>& out) const {
  out.clear();
  auto it = buckets_.find(name);
  if (it == buckets_.end()) return 0;
  const Bucket& bucket = it->second;
  // Overlap requires start <= to and end >= from; end <= start +
  // max_duration bounds the backward scan exactly as in EventStore.
  util::TimeSec lo = from - bucket.max_duration;

  if (bucket.lazy2) {
    const LazyV2Run& lazy = *bucket.lazy2;
    const std::vector<V2Block>& blocks = lazy.run->blocks;
    // Zone-map pruning: both min_start and max_start are non-decreasing
    // across blocks (enforced at footer decode), so the surviving range is
    // contiguous: first block whose max_start reaches lo, up to the first
    // block whose min_start passes to.
    std::size_t b0 = 0;
    std::size_t b1 = blocks.size();
    if (zone_pruning_) {
      b0 = static_cast<std::size_t>(
          std::lower_bound(blocks.begin(), blocks.end(), lo,
                           [](const V2Block& b, util::TimeSec v) {
                             return b.max_start < v;
                           }) -
          blocks.begin());
      b1 = static_cast<std::size_t>(
          std::upper_bound(blocks.begin(), blocks.end(), to,
                           [](util::TimeSec v, const V2Block& b) {
                             return v < b.min_start;
                           }) -
          blocks.begin());
    }
    query_stats_->zone_blocks_considered.fetch_add(
        blocks.size(), std::memory_order_relaxed);
    query_stats_->zone_blocks_skipped.fetch_add(
        blocks.size() - (b1 > b0 ? b1 - b0 : 0), std::memory_order_relaxed);
    if (b1 <= b0) return 0;
    // Tier 1: timestamp scan over the surviving blocks, allocation-free.
    ensure_v2_timestamps(lazy, b0, b1);
    const util::TimeSec* starts = lazy.starts.get();
    const util::TimeSec* ends = lazy.ends.get();
    std::size_t first = b0 * lazy.run->block_rows;
    std::size_t last = std::min<std::size_t>(
        b1 * static_cast<std::size_t>(lazy.run->block_rows),
        lazy.slot_count());
    const util::TimeSec* r_lo =
        std::lower_bound(starts + first, starts + last, lo);
    const util::TimeSec* r_hi =
        std::upper_bound(r_lo, starts + last, to);
    std::size_t row_lo = static_cast<std::size_t>(r_lo - starts);
    std::size_t row_hi = static_cast<std::size_t>(r_hi - starts);
    if (row_hi <= row_lo) return 0;
    // Tier 2: materialize only the selected rows that can still pass the
    // end-overlap filter below.
    ensure_v2_rows(lazy, row_lo, row_hi, from);
    out.reserve(row_hi - row_lo);
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      if (ends[r] >= from) out.push_back(&lazy.slots[r]);
    }
    return out.size();
  }

  const core::EventInstance* base = nullptr;
  std::size_t first = 0;
  std::size_t last = 0;
  if (bucket.lazy) {
    std::tie(first, last) = candidate_slots(*bucket.lazy, lo, to);
    base = bucket.lazy->slots.get();
  } else {
    base = bucket.merged.data();
    last = bucket.merged.size();
  }
  auto begin = base + first;
  auto end = base + last;
  auto lo_it = std::lower_bound(
      begin, end, lo, [](const core::EventInstance& e, util::TimeSec v) {
        return e.when.start < v;
      });
  auto hi_it = std::upper_bound(
      lo_it, end, to, [](util::TimeSec v, const core::EventInstance& e) {
        return v < e.when.start;
      });
  out.reserve(static_cast<std::size_t>(hi_it - lo_it));
  for (auto i = lo_it; i != hi_it; ++i) {
    if (i->when.end >= from) out.push_back(i);
  }
  return out.size();
}

std::span<const core::EventInstance> PersistentEventStore::all(
    const std::string& name) const {
  auto it = buckets_.find(name);
  if (it == buckets_.end()) return {};
  const Bucket& bucket = it->second;
  if (bucket.lazy2) {
    ensure_v2_rows(*bucket.lazy2, 0, bucket.lazy2->slot_count());
    return {bucket.lazy2->slots.get(), bucket.lazy2->slot_count()};
  }
  if (!bucket.lazy) return bucket.merged;
  ensure_blocks(*bucket.lazy, 0, bucket.lazy->block_count);
  return {bucket.lazy->slots.get(), bucket.lazy->slot_count()};
}

}  // namespace grca::storage
