// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "storage/persistent_store.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/codec.h"
#include "storage/event_log.h"
#include "util/error.h"

namespace grca::storage {

namespace {

/// Decodes exactly `count` frames starting at absolute file offset `at`,
/// passing each to `sink`. Sealed segments are CRC-complete by
/// construction, so an invalid frame here is corruption.
template <typename Sink>
void decode_run_frames(const SegmentReader& seg, std::uint64_t at,
                       std::uint64_t count, Sink&& sink) {
  std::span<const std::uint8_t> bytes = seg.bytes();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::optional<FrameView> frame =
        probe_frame(bytes.subspan(at, seg.frames_end() - at));
    if (!frame) {
      throw StorageError("storage: corrupt frame in sealed segment " +
                         seg.path().string() + " at offset " +
                         std::to_string(at));
    }
    sink(decode_event(frame->payload));
    at += frame->frame_bytes;
  }
}

}  // namespace

PersistentEventStore PersistentEventStore::open(
    const std::filesystem::path& dir) {
  obs::ScopedSpan span("store-open");
  PersistentEventStore store;
  store.dir_ = dir;

  // Map every sealed segment; a seg-*.grseg without a valid footer lost
  // its seal to corruption, which open() refuses (verify/compact are the
  // repair tools).
  for (const std::filesystem::path& path : list_segments(dir)) {
    auto seg = std::make_unique<SegmentReader>(SegmentReader::open(path));
    if (!seg->sealed()) {
      throw StorageError("storage: segment " + path.string() +
                         " has no valid footer (damaged seal)");
    }
    store.stats_.mapped_bytes += seg->size();
    store.watermark_ = std::max(store.watermark_, seg->footer().watermark);
    store.segments_.push_back(std::move(seg));
  }
  store.stats_.sealed_segments = store.segments_.size();

  // Recover the WAL read-only: adopt the valid frame prefix, skip (and
  // count) the torn tail. Damage before the first frame means nothing is
  // recoverable.
  std::vector<core::EventInstance> wal_events;
  std::filesystem::path wal_path = dir / kWalName;
  if (std::filesystem::exists(wal_path)) {
    store.stats_.wal_present = true;
    try {
      SegmentReader wal = SegmentReader::open(wal_path);
      SegmentReader::Scan scan = wal.scan_frames();
      wal_events = std::move(scan.events);
      store.stats_.recovered_bytes =
          scan.valid_bytes > kSegmentHeaderBytes
              ? scan.valid_bytes - kSegmentHeaderBytes
              : 0;
      store.stats_.truncated_bytes = scan.dropped_bytes;
    } catch (const StorageError&) {
      store.stats_.truncated_bytes = std::filesystem::file_size(wal_path);
    }
    store.stats_.wal_events = wal_events.size();
  }
  if (store.segments_.empty() && !store.stats_.wal_present) {
    throw StorageError("storage: no event log at " + dir.string() +
                       " (no segments, no WAL)");
  }

  // Per-name contributions, in segment-sequence order. std::map keeps
  // names_ sorted for free.
  struct Contribution {
    std::vector<std::pair<const SegmentReader*, const NameRun*>> runs;
    std::vector<core::EventInstance> wal_tail;
  };
  std::map<std::string, Contribution> by_name;
  for (const auto& seg : store.segments_) {
    for (const NameRun& run : seg->footer().runs) {
      by_name[run.name].runs.emplace_back(seg.get(), &run);
    }
  }
  for (core::EventInstance& e : wal_events) {
    by_name[e.name].wal_tail.push_back(std::move(e));
  }

  for (auto& [name, contrib] : by_name) {
    Bucket bucket;
    for (const auto& [seg, run] : contrib.runs) {
      bucket.max_duration = std::max(bucket.max_duration, run->max_duration);
      store.total_ += run->count;
    }
    store.total_ += contrib.wal_tail.size();
    if (contrib.runs.size() == 1 && contrib.wal_tail.empty()) {
      // Single sealed run: serve it lazily straight off the mapping.
      auto lazy = std::make_unique<LazyRun>();
      lazy->seg = contrib.runs[0].first;
      lazy->run = contrib.runs[0].second;
      lazy->block_count = lazy->run->blocks.size();
      lazy->slots =
          std::make_unique<core::EventInstance[]>(lazy->slot_count());
      lazy->block_ready =
          std::make_unique<std::atomic<bool>[]>(lazy->block_count);
      for (std::size_t b = 0; b < lazy->block_count; ++b) {
        lazy->block_ready[b].store(false, std::memory_order_relaxed);
      }
      bucket.lazy = lazy.get();
      store.lazy_runs_.push_back(std::move(lazy));
    } else {
      // Merged bucket: decode everything now, concatenated in sequence
      // order with the WAL tail last, then stable-sort by start — the
      // in-memory store's exact bucket order (ties keep append order).
      for (const auto& [seg, run] : contrib.runs) {
        decode_run_frames(*seg, run->first_offset, run->count,
                          [&](core::EventInstance e) {
                            bucket.merged.push_back(std::move(e));
                          });
      }
      for (core::EventInstance& e : contrib.wal_tail) {
        bucket.max_duration =
            std::max(bucket.max_duration, e.when.duration());
        bucket.merged.push_back(std::move(e));
      }
      std::stable_sort(bucket.merged.begin(), bucket.merged.end(),
                       [](const core::EventInstance& x,
                          const core::EventInstance& y) {
                         return x.when.start < y.when.start;
                       });
      for (core::EventInstance& e : bucket.merged) {
        e.where_id = store.locations_->intern(e.where);
      }
    }
    store.names_.push_back(name);
    store.buckets_.emplace(name, std::move(bucket));
  }
  store.stats_.event_count = store.total_;

  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    reg->counter("grca_storage_opens_total").inc();
    reg->gauge("grca_storage_segments")
        .set(static_cast<double>(store.stats_.sealed_segments));
    reg->gauge("grca_storage_mapped_bytes")
        .set(static_cast<double>(store.stats_.mapped_bytes));
    if (store.stats_.recovered_bytes > 0) {
      reg->counter("grca_storage_recovered_bytes")
          .inc(store.stats_.recovered_bytes);
    }
    if (store.stats_.truncated_bytes > 0) {
      reg->counter("grca_storage_truncated_bytes")
          .inc(store.stats_.truncated_bytes);
    }
  }
  return store;
}

void PersistentEventStore::ensure_blocks(const LazyRun& lazy,
                                         std::size_t first_block,
                                         std::size_t last_block) const {
  // Fast path: every touched block already materialized (acquire pairs
  // with the release below, so the slots it guards are visible).
  bool all_ready = true;
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (!lazy.block_ready[b].load(std::memory_order_acquire)) {
      all_ready = false;
      break;
    }
  }
  if (all_ready) return;

  LazyRun& mut = const_cast<LazyRun&>(lazy);
  std::lock_guard<std::mutex> lock(mut.decode_mutex);
  for (std::size_t b = first_block; b < last_block; ++b) {
    if (lazy.block_ready[b].load(std::memory_order_relaxed)) continue;
    std::size_t slot = b * lazy.run->block_frames;
    std::uint64_t frames =
        std::min<std::uint64_t>(lazy.run->block_frames,
                                lazy.run->count - slot);
    decode_run_frames(*lazy.seg, lazy.run->blocks[b].offset, frames,
                      [&](core::EventInstance e) {
                        e.where_id = locations_->intern(e.where);
                        mut.slots[slot++] = std::move(e);
                      });
    mut.block_ready[b].store(true, std::memory_order_release);
  }
}

std::pair<std::size_t, std::size_t> PersistentEventStore::candidate_slots(
    const LazyRun& lazy, util::TimeSec lo, util::TimeSec to) const {
  const std::vector<BlockEntry>& blocks = lazy.run->blocks;
  auto start_less = [](const BlockEntry& b, util::TimeSec v) {
    return b.first_start < v;
  };
  auto start_greater = [](util::TimeSec v, const BlockEntry& b) {
    return v < b.first_start;
  };
  // The block holding the first start >= lo may begin before lo, so step
  // one block back from the partition point.
  std::size_t b0 = static_cast<std::size_t>(
      std::lower_bound(blocks.begin(), blocks.end(), lo, start_less) -
      blocks.begin());
  if (b0 > 0) --b0;
  // Blocks whose first start already exceeds `to` cannot contribute.
  std::size_t b1 = static_cast<std::size_t>(
      std::upper_bound(blocks.begin(), blocks.end(), to, start_greater) -
      blocks.begin());
  if (b1 <= b0) return {0, 0};
  ensure_blocks(lazy, b0, b1);
  std::size_t first = b0 * lazy.run->block_frames;
  std::size_t last = std::min<std::size_t>(lazy.slot_count(),
                                           b1 * lazy.run->block_frames);
  return {first, last};
}

std::size_t PersistentEventStore::query_into(
    const std::string& name, util::TimeSec from, util::TimeSec to,
    std::vector<const core::EventInstance*>& out) const {
  out.clear();
  auto it = buckets_.find(name);
  if (it == buckets_.end()) return 0;
  const Bucket& bucket = it->second;
  // Overlap requires start <= to and end >= from; end <= start +
  // max_duration bounds the backward scan exactly as in EventStore.
  util::TimeSec lo = from - bucket.max_duration;
  const core::EventInstance* base = nullptr;
  std::size_t first = 0;
  std::size_t last = 0;
  if (bucket.lazy) {
    std::tie(first, last) = candidate_slots(*bucket.lazy, lo, to);
    base = bucket.lazy->slots.get();
  } else {
    base = bucket.merged.data();
    last = bucket.merged.size();
  }
  auto begin = base + first;
  auto end = base + last;
  auto lo_it = std::lower_bound(
      begin, end, lo, [](const core::EventInstance& e, util::TimeSec v) {
        return e.when.start < v;
      });
  auto hi_it = std::upper_bound(
      lo_it, end, to, [](util::TimeSec v, const core::EventInstance& e) {
        return v < e.when.start;
      });
  out.reserve(static_cast<std::size_t>(hi_it - lo_it));
  for (auto i = lo_it; i != hi_it; ++i) {
    if (i->when.end >= from) out.push_back(i);
  }
  return out.size();
}

std::span<const core::EventInstance> PersistentEventStore::all(
    const std::string& name) const {
  auto it = buckets_.find(name);
  if (it == buckets_.end()) return {};
  const Bucket& bucket = it->second;
  if (!bucket.lazy) return bucket.merged;
  ensure_blocks(*bucket.lazy, 0, bucket.lazy->block_count);
  return {bucket.lazy->slots.get(), bucket.lazy->slot_count()};
}

}  // namespace grca::storage
