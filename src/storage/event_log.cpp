// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "storage/event_log.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/span.h"
#include "storage/codec.h"
#include "storage/crc32c.h"
#include "util/error.h"

namespace grca::storage {

namespace fs = std::filesystem;

namespace {

fs::path segment_path(const fs::path& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "seg-%06llu%s",
                static_cast<unsigned long long>(seq), kSegmentExtension);
  return dir / name;
}

/// Parses "seg-<seq>.grseg"; nullopt for anything else (tmp files, wal).
std::optional<std::uint64_t> parse_seq(const fs::path& path) {
  std::string name = path.filename().string();
  const std::string prefix = "seg-";
  const std::string ext = kSegmentExtension;
  if (name.size() <= prefix.size() + ext.size()) return std::nullopt;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  if (name.compare(name.size() - ext.size(), ext.size(), ext) != 0) {
    return std::nullopt;
  }
  std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - ext.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

/// Writes `bytes` as `path` via a temp file + rename, so readers never see
/// a half-written segment.
void write_atomically(const fs::path& path,
                      std::span<const std::uint8_t> bytes) {
  fs::path tmp = path;
  tmp += ".tmp";
  write_file(tmp, bytes);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw StorageError("storage: rename " + tmp.string() + " -> " +
                       path.string() + ": " + ec.message());
  }
}

/// Groups pointers to `events` by name (names sorted) with each group in
/// (start, input-order) order — the exact bucket order the in-memory
/// store's stable sort produces, which is what keeps diagnosis verdicts
/// byte-identical across backends.
std::vector<std::pair<std::string, std::vector<const core::EventInstance*>>>
group_for_seal(const std::vector<core::EventInstance>& events) {
  std::vector<const core::EventInstance*> ptrs;
  ptrs.reserve(events.size());
  for (const core::EventInstance& e : events) ptrs.push_back(&e);
  std::stable_sort(ptrs.begin(), ptrs.end(),
                   [](const core::EventInstance* x,
                      const core::EventInstance* y) {
                     if (x->name != y->name) return x->name < y->name;
                     return x->when.start < y->when.start;
                   });
  std::vector<std::pair<std::string, std::vector<const core::EventInstance*>>>
      groups;
  for (const core::EventInstance* e : ptrs) {
    if (groups.empty() || groups.back().first != e->name) {
      groups.emplace_back(e->name,
                          std::vector<const core::EventInstance*>{});
    }
    groups.back().second.push_back(e);
  }
  return groups;
}

/// Format dispatch for the three seal sites (writer, batch export,
/// compaction).
std::vector<std::uint8_t> encode_sealed(
    std::uint64_t seq, util::TimeSec watermark,
    const std::vector<
        std::pair<std::string, std::vector<const core::EventInstance*>>>&
        groups,
    SealFormat format) {
  return format == SealFormat::kV2
             ? encode_sealed_segment_v2(seq, watermark, groups)
             : encode_sealed_segment(seq, watermark, groups);
}

}  // namespace

std::vector<fs::path> list_segments(const fs::path& dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (std::optional<std::uint64_t> seq = parse_seq(entry.path())) {
      found.emplace_back(*seq, entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<fs::path> out;
  out.reserve(found.size());
  for (auto& [seq, path] : found) out.push_back(std::move(path));
  return out;
}

EventLogWriter::EventLogWriter(const fs::path& dir, bool discard_wal,
                               SealFormat seal_format)
    : dir_(dir), seal_format_(seal_format) {
  fs::create_directories(dir_);
  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    bytes_written_ = &reg->counter("grca_storage_bytes_written_total");
    recovered_bytes_ = &reg->counter("grca_storage_recovered_bytes");
    seals_ = &reg->counter("grca_storage_seals_total");
  }
  for (const fs::path& seg : list_segments(dir_)) {
    next_seq_ = std::max(next_seq_, *parse_seq(seg) + 1);
  }
  // Recover (or discard) an existing WAL, then rewrite it normalized: the
  // header plus exactly the re-adopted frames. Rewriting instead of
  // truncating keeps the recovery logic in one place.
  fs::path wal_path = dir_ / kWalName;
  std::uint64_t dropped = 0;
  if (fs::exists(wal_path)) {
    std::uint64_t file_size = fs::file_size(wal_path);
    try {
      SegmentReader wal = SegmentReader::open(wal_path);
      SegmentReader::Scan scan = wal.scan_frames();
      dropped = scan.dropped_bytes;
      if (discard_wal) {
        dropped = file_size - kSegmentHeaderBytes;
      } else {
        pending_ = std::move(scan.events);
        if (recovered_bytes_ && scan.valid_bytes > kSegmentHeaderBytes) {
          recovered_bytes_->inc(scan.valid_bytes - kSegmentHeaderBytes);
        }
      }
    } catch (const StorageError&) {
      // Even the header is damaged (crash while creating the file): the
      // whole thing is a torn tail.
      dropped = file_size;
    }
  }
  if (obs::MetricsRegistry* reg = obs::registry_ptr(); reg && dropped > 0) {
    reg->counter("grca_storage_truncated_bytes").inc(dropped);
  }
  // Rewrite the WAL from scratch: header + re-adopted frames.
  std::vector<std::uint8_t> image =
      encode_segment_header(next_seq_, SegmentKind::kLive);
  for (const core::EventInstance& e : pending_) encode_frame(e, image);
  write_file(wal_path, image);
  open_wal_for_append(image.size());
}

void EventLogWriter::open_wal_for_append(std::uint64_t at) {
  wal_.close();
  wal_.clear();
  wal_.open(dir_ / kWalName, std::ios::binary | std::ios::in | std::ios::out);
  if (!wal_) {
    throw StorageError("storage: cannot open WAL for append in " +
                       dir_.string());
  }
  wal_.seekp(static_cast<std::streamoff>(at));
}

void EventLogWriter::append(const core::EventInstance& e) {
  scratch_.clear();
  encode_frame(e, scratch_);
  wal_.write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  wal_.flush();
  if (!wal_) {
    throw StorageError("storage: WAL append failed in " + dir_.string());
  }
  bytes_appended_ += scratch_.size();
  if (bytes_written_) bytes_written_->inc(scratch_.size());
  pending_.push_back(e);
}

std::optional<std::uint64_t> EventLogWriter::seal(util::TimeSec watermark) {
  obs::ScopedSpan span("store-seal");
  auto groups = group_for_seal(pending_);
  std::vector<std::uint8_t> image =
      encode_sealed(next_seq_, watermark, groups, seal_format_);
  write_atomically(segment_path(dir_, next_seq_), image);
  if (bytes_written_) bytes_written_->inc(image.size());
  if (seals_) seals_->inc();
  std::uint64_t seq = next_seq_++;
  pending_.clear();
  // Reset the WAL for the next batch (new header carries the new seq).
  std::vector<std::uint8_t> header =
      encode_segment_header(next_seq_, SegmentKind::kLive);
  write_file(dir_ / kWalName, header);
  open_wal_for_append(header.size());
  return seq;
}

void write_sealed_store(const fs::path& dir, const core::EventStore& store,
                        util::TimeSec watermark, SealFormat format) {
  obs::ScopedSpan span("store-seal");
  fs::create_directories(dir);
  // Replace semantics: a store-out directory holds exactly this corpus.
  for (const fs::path& old : list_segments(dir)) fs::remove(old);
  fs::remove(dir / kWalName);
  store.warm();  // buckets sorted before we stream them out
  std::vector<std::pair<std::string, std::vector<const core::EventInstance*>>>
      groups;
  for (const std::string& name : store.event_names()) {
    std::span<const core::EventInstance> bucket = store.all(name);
    std::vector<const core::EventInstance*> ptrs;
    ptrs.reserve(bucket.size());
    for (const core::EventInstance& e : bucket) ptrs.push_back(&e);
    groups.emplace_back(name, std::move(ptrs));
  }
  std::vector<std::uint8_t> image = encode_sealed(1, watermark, groups, format);
  write_atomically(segment_path(dir, 1), image);
  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    reg->counter("grca_storage_bytes_written_total").inc(image.size());
    reg->counter("grca_storage_seals_total").inc();
  }
}

SealedLoad load_sealed_events(const fs::path& dir) {
  SealedLoad load;
  for (const fs::path& path : list_segments(dir)) {
    SegmentReader seg = SegmentReader::open(path);
    if (!seg.sealed()) continue;
    std::vector<core::EventInstance> events = seg.read_all_events();
    load.events.insert(load.events.end(),
                       std::make_move_iterator(events.begin()),
                       std::make_move_iterator(events.end()));
    util::TimeSec watermark = seg.sealed_watermark();
    if (!load.watermark || watermark > *load.watermark) {
      load.watermark = watermark;
    }
    ++load.segments;
  }
  return load;
}

namespace {

/// v1 sealed-segment check: every frame decodes, footer/frame agreement
/// (counts, tiling, ordering, index checkpoints, max durations). v1 frames
/// are self-describing, so this *is* the full rescan — deep mode adds
/// nothing for v1.
void check_sealed_v1(const SegmentReader& seg, VerifyReport& report) {
  const fs::path& path = seg.path();
  SegmentReader::Scan scan = seg.scan_frames();
  report.frames += scan.events.size();
  if (scan.dropped_bytes != 0) {
    report.errors.push_back(path.string() + ": corrupt frame at offset " +
                            std::to_string(scan.valid_bytes));
    return;
  }
  const SegmentFooter& footer = seg.footer();
  if (scan.events.size() != footer.event_count) {
    report.errors.push_back(
        path.string() + ": footer claims " +
        std::to_string(footer.event_count) + " events, found " +
        std::to_string(scan.events.size()));
  }
  // Footer/frame agreement: runs must tile the frame region in name
  // order, each sorted by start with consistent index checkpoints.
  std::uint64_t cursor = kSegmentHeaderBytes;
  std::size_t event_at = 0;
  for (std::size_t r = 0; r < footer.runs.size(); ++r) {
    const NameRun& run = footer.runs[r];
    std::string where = path.string() + " run '" + run.name + "'";
    if (r > 0 && !(footer.runs[r - 1].name < run.name)) {
      report.errors.push_back(where + ": names out of order");
    }
    if (run.first_offset != cursor) {
      report.errors.push_back(where + ": offset " +
                              std::to_string(run.first_offset) +
                              " does not tile (expected " +
                              std::to_string(cursor) + ")");
      break;
    }
    cursor += run.byte_len;
    util::TimeSec max_duration = 0;
    util::TimeSec prev_start = std::numeric_limits<util::TimeSec>::min();
    for (std::uint64_t i = 0; i < run.count; ++i) {
      if (event_at >= scan.events.size()) break;
      const core::EventInstance& e = scan.events[event_at++];
      if (e.name != run.name) {
        report.errors.push_back(where + ": frame " + std::to_string(i) +
                                " belongs to '" + e.name + "'");
        break;
      }
      if (e.when.start < prev_start) {
        report.errors.push_back(where + ": frames out of start order");
        break;
      }
      prev_start = e.when.start;
      max_duration = std::max(max_duration, e.when.duration());
      if (i % run.block_frames == 0) {
        const BlockEntry& block = run.blocks[i / run.block_frames];
        if (block.first_start != e.when.start) {
          report.errors.push_back(where + ": index block " +
                                  std::to_string(i / run.block_frames) +
                                  " start mismatch");
          break;
        }
      }
    }
    if (max_duration != run.max_duration) {
      report.errors.push_back(where + ": footer max_duration " +
                              std::to_string(run.max_duration) +
                              " != observed " +
                              std::to_string(max_duration));
    }
  }
  if (cursor != seg.frames_end()) {
    report.errors.push_back(path.string() +
                            ": runs do not cover the frame region");
  }
}

/// v2 sealed-segment check. Normal mode: per-run region CRCs plus a full
/// structural decode (every varint bounds-checked, every dictionary id
/// resolved). Deep mode additionally recomputes the footer statistics —
/// max durations and every zone map — from the decoded rows.
void check_sealed_v2(const SegmentReader& seg, VerifyReport& report,
                     bool deep) {
  const fs::path& path = seg.path();
  const V2Footer& footer = seg.v2_footer();
  std::span<const std::uint8_t> bytes = seg.bytes();
  for (const V2Run& run : footer.runs) {
    std::string where =
        path.string() + " run '" + footer.names[run.name_id] + "'";
    if (crc32c(bytes.data() + run.region_off, run.region_len()) !=
        run.region_crc) {
      report.errors.push_back(where + ": column region checksum mismatch");
      continue;
    }
    std::vector<core::EventInstance> rows;
    std::vector<core::LocId> row_locs;  // dictionary ids, row order
    if (deep) {
      rows.reserve(run.count);
      row_locs.reserve(run.count);
    }
    try {
      decode_v2_rows(bytes, footer, run, 0, run.count,
                     [&](std::uint64_t, core::EventInstance e,
                         core::LocId loc) {
                       if (deep) {
                         rows.push_back(std::move(e));
                         row_locs.push_back(loc);
                       }
                     });
    } catch (const StorageError& e) {
      report.errors.push_back(where + ": " + e.what());
      continue;
    }
    report.frames += run.count;
    if (!deep) continue;
    util::TimeSec max_duration = 0;
    for (std::size_t b = 0; b < run.blocks.size(); ++b) {
      const V2Block& zone = run.blocks[b];
      std::size_t lo = b * run.block_rows;
      std::size_t hi = std::min<std::size_t>(lo + run.block_rows,
                                             rows.size());
      util::TimeSec min_start = rows[lo].when.start;
      util::TimeSec max_start = rows[lo].when.start;
      core::LocId loc_min = std::numeric_limits<core::LocId>::max();
      core::LocId loc_max = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        min_start = std::min(min_start, rows[i].when.start);
        max_start = std::max(max_start, rows[i].when.start);
        max_duration = std::max(max_duration, rows[i].when.duration());
        loc_min = std::min(loc_min, row_locs[i]);
        loc_max = std::max(loc_max, row_locs[i]);
      }
      if (zone.min_start != min_start || zone.max_start != max_start) {
        report.errors.push_back(where + ": zone map " + std::to_string(b) +
                                " start range mismatch");
      }
      if (zone.loc_min != loc_min || zone.loc_max != loc_max) {
        report.errors.push_back(where + ": zone map " + std::to_string(b) +
                                " location range mismatch");
      }
      if (zone.name_bitmap != (1ull << (run.name_id % 64))) {
        report.errors.push_back(where + ": zone map " + std::to_string(b) +
                                " name bitmap mismatch");
      }
    }
    if (max_duration != run.max_duration) {
      report.errors.push_back(where + ": footer max_duration " +
                              std::to_string(run.max_duration) +
                              " != observed " +
                              std::to_string(max_duration));
    }
  }
}

}  // namespace

VerifyReport verify_store(const fs::path& dir, bool deep) {
  VerifyReport report;
  report.deep = deep;
  if (!fs::is_directory(dir)) {
    report.errors.push_back(dir.string() + " is not a directory");
    return report;
  }
  std::vector<fs::path> paths = list_segments(dir);
  fs::path wal_path = dir / kWalName;
  if (fs::exists(wal_path)) paths.push_back(wal_path);
  for (const fs::path& path : paths) {
    ++report.segments;
    SegmentReader seg;
    try {
      seg = SegmentReader::open(path);
    } catch (const StorageError& e) {
      report.errors.push_back(e.what());
      continue;
    }
    report.bytes += seg.size();
    if (!seg.sealed()) {
      // Only the (always-v1) WAL may be live; a seg-* file without a valid
      // seal lost its footer to corruption.
      SegmentReader::Scan scan = seg.scan_frames();
      report.frames += scan.events.size();
      if (path == wal_path) {
        report.torn_wal_bytes += scan.dropped_bytes;
      } else {
        report.errors.push_back(path.string() +
                                ": sealed segment lost its seal");
      }
      continue;
    }
    if (seg.format_version() == kFormatV2) {
      ++report.v2_segments;
      check_sealed_v2(seg, report, deep);
    } else {
      check_sealed_v1(seg, report);
    }
  }
  return report;
}

std::optional<std::uint64_t> compact_store(const fs::path& dir,
                                           SealFormat format) {
  // Collect every event: sealed segments in sequence order, then the WAL's
  // valid prefix. The stable per-(name,start) sort in group_for_seal keeps
  // ties in this collection order, so merged buckets read back in exactly
  // the order the separate segments produced.
  std::vector<fs::path> inputs = list_segments(dir);
  std::vector<core::EventInstance> events;
  util::TimeSec watermark = 0;
  for (const fs::path& path : inputs) {
    SegmentReader seg = SegmentReader::open(path);
    if (!seg.sealed()) {
      throw StorageError("storage: refusing to compact unsealed segment " +
                         path.string());
    }
    std::vector<core::EventInstance> from_seg;
    try {
      from_seg = seg.read_all_events();
    } catch (const StorageError& e) {
      throw StorageError("storage: refusing to compact corrupt segment " +
                         path.string() + ": " + e.what());
    }
    watermark = std::max(watermark, seg.sealed_watermark());
    events.insert(events.end(),
                  std::make_move_iterator(from_seg.begin()),
                  std::make_move_iterator(from_seg.end()));
  }
  std::uint64_t next_seq = 1;
  fs::path wal_path = dir / kWalName;
  if (fs::exists(wal_path)) {
    SegmentReader wal = SegmentReader::open(wal_path);
    SegmentReader::Scan scan = wal.scan_frames();
    events.insert(events.end(),
                  std::make_move_iterator(scan.events.begin()),
                  std::make_move_iterator(scan.events.end()));
  }
  for (const fs::path& path : inputs) {
    next_seq = std::max(next_seq, *parse_seq(path) + 1);
  }
  if (events.empty()) return std::nullopt;
  obs::ScopedSpan span("store-compact");
  auto groups = group_for_seal(events);
  std::vector<std::uint8_t> image =
      encode_sealed(next_seq, watermark, groups, format);
  fs::path out_path = segment_path(dir, next_seq);
  write_atomically(out_path, image);
  // Post-compact invariant check *before* any input is removed: re-open
  // the output and deep-verify it — footer statistics must equal a full
  // rescan and the row count must match what went in. On failure the
  // output is deleted and the inputs survive untouched.
  {
    VerifyReport check;
    check.deep = true;
    SegmentReader out;
    try {
      out = SegmentReader::open(out_path);
      if (out.format_version() == kFormatV2) {
        check_sealed_v2(out, check, /*deep=*/true);
      } else {
        check_sealed_v1(out, check);
      }
      if (out.sealed_event_count() != events.size()) {
        check.errors.push_back(out_path.string() + ": compacted " +
                               std::to_string(events.size()) +
                               " events but footer claims " +
                               std::to_string(out.sealed_event_count()));
      }
    } catch (const StorageError& e) {
      check.errors.push_back(e.what());
    }
    if (!check.ok()) {
      fs::remove(out_path);
      throw StorageError("storage: compaction output failed validation: " +
                         check.errors.front());
    }
  }
  for (const fs::path& path : inputs) fs::remove(path);
  fs::remove(wal_path);
  return next_seq;
}

}  // namespace grca::storage
