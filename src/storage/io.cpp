// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "storage/io.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRCA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GRCA_HAVE_MMAP 0
#endif

namespace grca::storage {

namespace {

[[noreturn]] void fail(const std::string& op,
                       const std::filesystem::path& path) {
  throw StorageError("storage: " + op + " " + path.string() + ": " +
                     std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() {
#if GRCA_HAVE_MMAP
  if (mapped_ && data_) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_ && data_) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if GRCA_HAVE_MMAP
  if (mapped_ && data_) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_ && data_) data_ = fallback_.data();
  return *this;
}

MappedFile MappedFile::open(const std::filesystem::path& path) {
  MappedFile f;
#if GRCA_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("fstat", path);
  }
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ == 0) {
    ::close(fd);
    return f;
  }
  void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p != MAP_FAILED) {
    f.data_ = static_cast<const std::uint8_t*>(p);
    f.mapped_ = true;
    return f;
  }
#endif
  f.fallback_ = read_file(path);
  f.size_ = f.fallback_.size();
  f.data_ = f.fallback_.data();
  f.mapped_ = false;
  return f;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw StorageError("storage: cannot read " + path.string());
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw StorageError("storage: short read on " + path.string());
  }
  return bytes;
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw StorageError("storage: cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw StorageError("storage: short write on " + path.string());
}

void truncate_file(const std::filesystem::path& path, std::uint64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    throw StorageError("storage: truncate " + path.string() + ": " +
                       ec.message());
  }
}

}  // namespace grca::storage
