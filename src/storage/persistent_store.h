// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The mmap-backed event store: a core::EventStoreView served straight from
// a segmented event log directory, so diagnosis runs against a persisted
// corpus without re-ingesting raw telemetry.
//
// open() maps every segment (sealed segments plus the WAL's valid frame
// prefix — a torn tail is skipped and counted, never modified: the reader
// is strictly read-only) and builds the per-name index from segment
// footers alone; no frame is deserialized yet. Queries then decode lazily:
//
//  - A name stored wholly in one sealed v1 run keeps its frames mapped and
//    materializes them block by block (kIndexBlockFrames frames per
//    block). A (name x window) query binary-searches the footer's sparse
//    checkpoint array to find the touched blocks, decodes only those, and
//    binary-searches the materialized slots — cold-open query cost is
//    proportional to the answer, not the corpus.
//  - A name stored wholly in one sealed v2 (columnar) run goes through two
//    tiers. Tier 1: the query binary-searches the footer's zone maps
//    (min/max start per block) — blocks whose start range misses the
//    window are skipped without touching their bytes — and delta-decodes
//    just the timestamp columns of the surviving blocks into contiguous
//    start/end arrays it then scans allocation-free. Tier 2: only the rows
//    the timestamp scan selects AND whose end can still overlap the window
//    are materialized (name, location, attrs), row by row; everything else
//    just advances the column cursors. Narrow windows therefore pay two
//    integer varint walks plus a handful of row materializations where v1
//    pays a full frame decode (strings, attr maps, CRCs) for every
//    candidate block.
//  - A name spread over several segments (or with WAL-tail frames) is
//    merged eagerly at open: rows concatenated in segment-sequence order
//    and stable-sorted by start, which is exactly the in-memory store's
//    bucket order — the basis of the byte-identical-verdicts guarantee.
//    v1 and v2 segments mix freely here; row order within a segment is
//    format-independent.
//
// Threading: the view is frozen from construction. Lazy materialization is
// internally synchronized (per-bucket mutex + per-block ready flags with
// acquire/release ordering), so all EventStoreView methods are safe from
// any number of threads, matching the warmed in-memory store. Returned
// EventInstance pointers stay valid for the store's lifetime (slots are
// preallocated; decode never reallocates).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/event_store.h"
#include "storage/segment.h"

namespace grca::storage {

class PersistentEventStore final : public core::EventStoreView {
 public:
  /// What open() found — surfaced by `grca store inspect` and the tests.
  struct OpenStats {
    std::size_t sealed_segments = 0;
    std::size_t v2_segments = 0;         // columnar subset of the above
    bool wal_present = false;
    std::uint64_t wal_events = 0;        // valid WAL frames adopted
    std::uint64_t recovered_bytes = 0;   // WAL frame bytes adopted
    std::uint64_t truncated_bytes = 0;   // torn WAL tail skipped
    std::uint64_t mapped_bytes = 0;      // total segment bytes mapped
    std::uint64_t event_count = 0;
  };

  /// Opens the log at `dir`. Throws StorageError when the directory holds
  /// no segments at all, or when a sealed segment is damaged (WAL damage
  /// is recovered, not fatal).
  static PersistentEventStore open(const std::filesystem::path& dir);

  PersistentEventStore(PersistentEventStore&&) = default;
  PersistentEventStore& operator=(PersistentEventStore&&) = default;

  // core::EventStoreView -----------------------------------------------
  /// No-op: open() already froze the view and queries synchronize
  /// internally. Present so backend-generic code can follow the
  /// freeze-then-query protocol unconditionally.
  void warm() const override {}
  std::size_t query_into(
      const std::string& name, util::TimeSec from, util::TimeSec to,
      std::vector<const core::EventInstance*>& out) const override;
  core::LocationTable& locations() const noexcept override {
    return *locations_;
  }
  std::span<const core::EventInstance> all(
      const std::string& name) const override;
  std::vector<std::string> event_names() const override { return names_; }
  std::size_t total_instances() const noexcept override { return total_; }

  // Storage-specific ----------------------------------------------------
  const OpenStats& stats() const noexcept { return stats_; }
  /// Newest sealed watermark (0 when no sealed segment exists).
  util::TimeSec watermark() const noexcept { return watermark_; }
  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Cumulative query-path counters (zone-map effectiveness). Monotone,
  /// thread-safe; the scaling bench derives its skip ratio from these.
  struct QueryStats {
    std::atomic<std::uint64_t> zone_blocks_considered{0};
    std::atomic<std::uint64_t> zone_blocks_skipped{0};
    std::atomic<std::uint64_t> rows_materialized{0};
  };
  const QueryStats& query_stats() const noexcept { return *query_stats_; }

  /// Disables zone-map block skipping (every v2 query scans the whole
  /// run's timestamps). Results must be identical either way — this exists
  /// so tests can prove it.
  void set_zone_pruning(bool on) noexcept { zone_pruning_ = on; }

 private:
  /// One sealed name-run materialized lazily from its mapped frames.
  struct LazyRun {
    const SegmentReader* seg = nullptr;
    const NameRun* run = nullptr;
    std::unique_ptr<core::EventInstance[]> slots;     // run->count entries
    std::unique_ptr<std::atomic<bool>[]> block_ready;  // per index block
    std::mutex decode_mutex;
    std::size_t block_count = 0;

    std::size_t slot_count() const noexcept {
      return static_cast<std::size_t>(run->count);
    }
  };

  /// One sealed v2 name-run, served in two lazy tiers straight off the
  /// mapped columns (see the file comment).
  struct LazyV2Run {
    const SegmentReader* seg = nullptr;
    const V2Run* run = nullptr;
    // Segment location-dictionary id -> this store's interned LocId,
    // precomputed at open so row materialization is an array lookup
    // instead of a per-row Location hash + table probe.
    const core::LocId* loc_map = nullptr;
    // Tier 1: contiguous per-row timestamp arrays, decoded per block.
    std::unique_ptr<util::TimeSec[]> starts;           // run->count entries
    std::unique_ptr<util::TimeSec[]> ends;             // run->count entries
    std::unique_ptr<std::atomic<bool>[]> ts_ready;     // per block
    // Tier 2: materialized rows. Row-granular so a query materializes
    // exactly the rows its timestamp scan selected — skipped rows in the
    // same block only advance the column cursors.
    std::unique_ptr<core::EventInstance[]> slots;      // run->count entries
    std::unique_ptr<std::atomic<bool>[]> row_ready;    // per row
    std::mutex decode_mutex;
    std::size_t block_count = 0;

    std::size_t slot_count() const noexcept {
      return static_cast<std::size_t>(run->count);
    }
  };

  struct Bucket {
    util::TimeSec max_duration = 0;
    LazyRun* lazy = nullptr;                   // single v1 run, or
    LazyV2Run* lazy2 = nullptr;                // single v2 run, or
    std::vector<core::EventInstance> merged;   // eager multi-source merge
  };

  PersistentEventStore() = default;

  /// Materializes blocks [first_block, last_block) of `lazy`, interning
  /// locations as frames decode. Thread-safe.
  void ensure_blocks(const LazyRun& lazy, std::size_t first_block,
                     std::size_t last_block) const;

  /// Candidate slot range for a window query: decodes just the blocks the
  /// footer checkpoints say can hold starts in [lo, to] and returns their
  /// slot span [first, last).
  std::pair<std::size_t, std::size_t> candidate_slots(
      const LazyRun& lazy, util::TimeSec lo, util::TimeSec to) const;

  /// Tier 1: timestamp arrays ready for blocks [first_block, last_block).
  void ensure_v2_timestamps(const LazyV2Run& lazy, std::size_t first_block,
                            std::size_t last_block) const;
  /// Tier 2: rows [first, last) whose end reaches `min_end` materialized
  /// (row granularity; rows the window query would filter out anyway are
  /// never built — their column cursors just advance). Callers passing a
  /// real min_end must have tier-1 timestamps ready for the range; the
  /// default materializes unconditionally.
  void ensure_v2_rows(
      const LazyV2Run& lazy, std::size_t first, std::size_t last,
      util::TimeSec min_end =
          std::numeric_limits<util::TimeSec>::min()) const;

  std::filesystem::path dir_;
  // deques/unique_ptrs keep addresses stable under the map's growth and
  // the store's moves; LazyRun pins a mutex so it lives behind unique_ptr.
  std::vector<std::unique_ptr<SegmentReader>> segments_;
  // Per-v2-segment dictionary translation (dict id -> interned LocId);
  // inner buffers are stable under outer growth and store moves, so
  // LazyV2Run::loc_map can point straight at them.
  std::vector<std::vector<core::LocId>> v2_loc_maps_;
  std::vector<std::unique_ptr<LazyRun>> lazy_runs_;
  std::vector<std::unique_ptr<LazyV2Run>> lazy_v2_runs_;
  std::unordered_map<std::string, Bucket> buckets_;
  std::vector<std::string> names_;  // sorted
  std::size_t total_ = 0;
  util::TimeSec watermark_ = 0;
  bool zone_pruning_ = true;
  std::unique_ptr<QueryStats> query_stats_ = std::make_unique<QueryStats>();
  OpenStats stats_;
  std::unique_ptr<core::LocationTable> locations_ =
      std::make_unique<core::LocationTable>();
};

}  // namespace grca::storage
