// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Low-level file plumbing for the persistent event store: a read-only
// memory-mapped file (the query path maps sealed segments and binary-
// searches them in place) and small whole-file read/write/rename helpers
// used by the writer and the compactor. POSIX mmap with a plain read()
// fallback, so the store also works on filesystems that refuse mappings —
// the format and the query results are identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace grca::storage {

/// A read-only view of one file, memory-mapped when possible. Move-only;
/// unmaps on destruction. The view stays valid and immutable for the
/// object's lifetime — callers hand out pointers into it (decoded event
/// strings are copied out, but frame headers are read in place).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Throws StorageError when the file cannot be
  /// opened or mapped (a zero-length file opens fine and yields an empty
  /// view).
  static MappedFile open(const std::filesystem::path& path);

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  /// True when the view is an actual mmap (false: fallback heap copy).
  bool mapped() const noexcept { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  // owns the bytes when !mapped_
};

/// Reads a whole file; throws StorageError on failure.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);

/// Writes `bytes` to `path` (truncating); throws StorageError on failure.
void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes);

/// Truncates `path` to `size` bytes; throws StorageError on failure.
void truncate_file(const std::filesystem::path& path, std::uint64_t size);

}  // namespace grca::storage
