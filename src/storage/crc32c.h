// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing every
// record and footer in the persistent event store. Chosen over plain CRC32
// for its better error-detection properties on storage workloads (the same
// reason LevelDB, RocksDB and the ext4 journal use it). Software
// slice-by-eight implementation: ~1 byte/cycle, no ISA dependency, so the
// format is identical on every build.
#pragma once

#include <cstddef>
#include <cstdint>

namespace grca::storage {

/// Extends a running CRC32C with `n` bytes. Start a fresh checksum with
/// `crc = 0`; the returned value is the finalized checksum (the
/// pre/post-inversion is handled internally, so chaining calls with the
/// previous return value accumulates correctly).
std::uint32_t crc32c(std::uint32_t crc, const void* data,
                     std::size_t n) noexcept;

/// One-shot convenience.
inline std::uint32_t crc32c(const void* data, std::size_t n) noexcept {
  return crc32c(0, data, n);
}

}  // namespace grca::storage
