// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "storage/crc32c.h"

#include <array>

namespace grca::storage {

namespace {

/// 8 x 256 lookup tables for slice-by-eight, generated once at startup.
/// Table 0 is the classic byte-at-a-time table; table k folds a byte that
/// sits k positions ahead in the stream.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() noexcept {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (c >> 1) ^ kPoly : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& tables() noexcept {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data,
                     std::size_t n) noexcept {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  while (n >= 8) {
    // Little-endian-independent load: assemble the two words byte-wise so
    // the checksum is identical on any host.
    std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                       static_cast<std::uint32_t>(p[1]) << 8 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[3]) << 24;
    c ^= lo;
    c = tb.t[7][c & 0xff] ^ tb.t[6][(c >> 8) & 0xff] ^
        tb.t[5][(c >> 16) & 0xff] ^ tb.t[4][c >> 24] ^ tb.t[3][p[4]] ^
        tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = tb.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace grca::storage
