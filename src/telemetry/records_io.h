// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Flat-file persistence for raw telemetry: tab-separated, one record per
// line, mirroring how real feeds are archived and replayed. Used by the
// grca CLI to decouple telemetry generation from analysis runs.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/records.h"

namespace grca::telemetry {

/// Writes one record as a single TSV line (no trailing newline handling —
/// the stream writer adds it). Tabs/newlines inside fields are escaped.
std::string to_tsv(const RawRecord& record);

/// Parses a line written by to_tsv. Throws grca::ParseError on malformed
/// input.
RawRecord from_tsv(const std::string& line);

/// Writes a stream with a header comment.
void write_stream(std::ostream& out, const RecordStream& stream);

/// Reads a stream (skips comment lines starting with '#').
RecordStream read_stream(std::istream& in);

std::string_view source_name(SourceType type) noexcept;
SourceType parse_source(std::string_view name);

}  // namespace grca::telemetry
