// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Raw telemetry records, as emitted by devices and management systems.
//
// The paper's Data Collector ingests ~600 heterogeneous sources: syslog,
// SNMP, layer-1 device logs, TACACS command logs, OSPF and BGP route
// monitors, end-to-end performance monitors, CDN server logs and workflow
// logs (§II-A). Each source has its own naming convention and its own
// timestamp convention — syslog stamps device-local wall-clock time, the
// monitors stamp UTC. The RawRecord type deliberately preserves those
// quirks; normalization is the *collector's* job, not the emitter's.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace grca::telemetry {

enum class SourceType {
  kSyslog,       // router syslog (device-local time, UPPERCASE router names)
  kSnmp,         // 5-minute SNMP poller (UTC, fqdn-style names)
  kLayer1Log,    // SONET / optical-mesh device logs (device-local time)
  kTacacs,       // router command logs (UTC, lowercase router names)
  kOspfMon,      // OSPFMon route monitor (UTC)
  kBgpMon,       // BGP route monitor (UTC)
  kPerfMon,      // inter-PoP active probing (UTC)
  kCdnMon,       // CDN end-to-end agent measurements (UTC)
  kServerLog,    // CDN server logs (UTC)
  kWorkflowLog,  // provisioning / maintenance workflow systems (UTC)
};

std::string_view to_string(SourceType type) noexcept;

/// One raw record. Interpretation of the fields varies by source:
///  - syslog:      device = "NYC-PER1" (uppercase), body = the %FAC-SEV-TAG
///                 message, timestamp = device-local time.
///  - snmp:        device = "nyc-per1.net.example" (fqdn), field = object
///                 name (e.g. "cpu5min", "ifutil"), value = reading,
///                 timestamp = UTC at interval *end*, attrs["interface"].
///  - layer1:      device = ADM/OXC name, body = restoration message
///                 containing the circuit id, timestamp = device-local time.
///  - tacacs:      device = router, attrs["user"], body = command text.
///  - ospfmon:     attrs["router"], attrs["interface"], value = new metric.
///  - bgpmon:      attrs["prefix"], attrs["egress"], body = announce|withdraw.
///  - perfmon:     attrs["ingress"], attrs["egress"] (PoP names), field =
///                 metric ("loss","delay","tput"), value = reading.
///  - cdnmon:      attrs["node"], attrs["client"] (client IP), field =
///                 metric ("rtt","tput"), value = reading.
///  - serverlog:   attrs["node"], attrs["server"], field = "load".
///  - workflowlog: device = router, field = activity type.
struct RawRecord {
  SourceType source = SourceType::kSyslog;
  util::TimeSec timestamp = 0;  // in the convention of the source (see above)
  std::string device;
  std::string field;
  std::string body;
  double value = 0.0;
  std::map<std::string, std::string> attrs;

  /// True emission instant in UTC. Carried for generator-side ordering and
  /// for test assertions ONLY — the collector must never read it (it has to
  /// reconstruct UTC from the source's timezone convention, as the real
  /// platform does).
  util::TimeSec true_utc = 0;
};

/// A batch of records ordered by true emission time.
using RecordStream = std::vector<RawRecord>;

/// Stable sort by true emission instant (generator-side helper).
void sort_stream(RecordStream& stream);

// ---- Syslog message vocabulary ---------------------------------------------
// Cisco-IOS-style message bodies used by the simulator and recognized by the
// collector's parsers. Keeping them in one place ties emitter and parser
// together without either including the other.

namespace msg {

std::string link_updown(const std::string& iface, bool up);
std::string lineproto_updown(const std::string& iface, bool up);
std::string bgp_adjchange(const std::string& neighbor_ip, bool up,
                          const std::string& reason);
/// code 4/0 = hold timer expired (sent); 6/4 = administrative reset (recvd).
std::string bgp_notification(const std::string& neighbor_ip, bool sent,
                             const std::string& code,
                             const std::string& reason);
std::string sys_restart();
std::string cpu_threshold(int percent);
std::string pim_nbrchg(const std::string& neighbor_ip, const std::string& vpn,
                       bool up);
std::string linecard_crash(int slot);

}  // namespace msg

}  // namespace grca::telemetry
