// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "telemetry/records.h"

#include <algorithm>

namespace grca::telemetry {

std::string_view to_string(SourceType type) noexcept {
  switch (type) {
    case SourceType::kSyslog: return "syslog";
    case SourceType::kSnmp: return "snmp";
    case SourceType::kLayer1Log: return "layer1";
    case SourceType::kTacacs: return "tacacs";
    case SourceType::kOspfMon: return "ospfmon";
    case SourceType::kBgpMon: return "bgpmon";
    case SourceType::kPerfMon: return "perfmon";
    case SourceType::kCdnMon: return "cdnmon";
    case SourceType::kServerLog: return "serverlog";
    case SourceType::kWorkflowLog: return "workflowlog";
  }
  return "?";
}

void sort_stream(RecordStream& stream) {
  std::stable_sort(stream.begin(), stream.end(),
                   [](const RawRecord& a, const RawRecord& b) {
                     return a.true_utc < b.true_utc;
                   });
}

namespace msg {

std::string link_updown(const std::string& iface, bool up) {
  return "%LINK-3-UPDOWN: Interface " + iface + ", changed state to " +
         (up ? "up" : "down");
}

std::string lineproto_updown(const std::string& iface, bool up) {
  return "%LINEPROTO-5-UPDOWN: Line protocol on Interface " + iface +
         ", changed state to " + (up ? "up" : "down");
}

std::string bgp_adjchange(const std::string& neighbor_ip, bool up,
                          const std::string& reason) {
  std::string out = "%BGP-5-ADJCHANGE: neighbor " + neighbor_ip + " " +
                    (up ? "Up" : "Down");
  if (!reason.empty()) out += " " + reason;
  return out;
}

std::string bgp_notification(const std::string& neighbor_ip, bool sent,
                             const std::string& code,
                             const std::string& reason) {
  return std::string("%BGP-5-NOTIFICATION: ") +
         (sent ? "sent to" : "received from") + " neighbor " + neighbor_ip +
         " " + code + " (" + reason + ")";
}

std::string sys_restart() { return "%SYS-5-RESTART: System restarted"; }

std::string cpu_threshold(int percent) {
  return "%SYS-1-CPURISINGTHRESHOLD: Threshold: Total CPU Utilization(Total/Intr): " +
         std::to_string(percent) + "%/2%";
}

std::string pim_nbrchg(const std::string& neighbor_ip, const std::string& vpn,
                       bool up) {
  return "%PIM-5-NBRCHG: VRF " + vpn + ": neighbor " + neighbor_ip + " " +
         (up ? "UP" : "DOWN");
}

std::string linecard_crash(int slot) {
  return "%MCE-2-CRASH: Line card in slot " + std::to_string(slot) +
         " crashed, resetting";
}

}  // namespace msg
}  // namespace grca::telemetry
