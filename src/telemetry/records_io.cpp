// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "telemetry/records_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace grca::telemetry {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case '\\': out += '\\'; break;
      default: out += text[i];
    }
  }
  return out;
}

}  // namespace

std::string_view source_name(SourceType type) noexcept {
  return to_string(type);
}

SourceType parse_source(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(SourceType::kWorkflowLog); ++i) {
    auto type = static_cast<SourceType>(i);
    if (to_string(type) == name) return type;
  }
  throw ParseError("unknown telemetry source '" + std::string(name) + "'");
}

std::string to_tsv(const RawRecord& r) {
  std::ostringstream out;
  out << to_string(r.source) << '\t' << r.timestamp << '\t'
      << escape(r.device) << '\t' << escape(r.field) << '\t'
      << escape(r.body) << '\t' << r.value << '\t' << r.true_utc << '\t';
  bool first = true;
  for (const auto& [k, v] : r.attrs) {
    if (!first) out << ';';
    first = false;
    out << escape(k) << '=' << escape(v);
  }
  return out.str();
}

RawRecord from_tsv(const std::string& line) {
  auto fields = util::split(line, '\t');
  if (fields.size() != 8) {
    throw ParseError("telemetry TSV: expected 8 fields, got " +
                     std::to_string(fields.size()));
  }
  RawRecord r;
  r.source = parse_source(fields[0]);
  r.timestamp = std::stoll(fields[1]);
  r.device = unescape(fields[2]);
  r.field = unescape(fields[3]);
  r.body = unescape(fields[4]);
  r.value = std::stod(fields[5]);
  r.true_utc = std::stoll(fields[6]);
  if (!fields[7].empty()) {
    for (const std::string& pair : util::split(fields[7], ';')) {
      auto eq = pair.find('=');
      if (eq == std::string::npos) {
        throw ParseError("telemetry TSV: bad attr '" + pair + "'");
      }
      r.attrs[unescape(pair.substr(0, eq))] = unescape(pair.substr(eq + 1));
    }
  }
  return r;
}

void write_stream(std::ostream& out, const RecordStream& stream) {
  out << "# grca telemetry v1: source\ttimestamp\tdevice\tfield\tbody\tvalue"
         "\ttrue_utc\tattrs\n";
  for (const RawRecord& r : stream) out << to_tsv(r) << '\n';
}

RecordStream read_stream(std::istream& in) {
  RecordStream stream;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    stream.push_back(from_tsv(line));
  }
  return stream;
}

}  // namespace grca::telemetry
