// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// TelemetryEmitter: produces RawRecords exactly the way each management
// system would — with that source's naming convention and timestamp
// convention. All the quirks the Data Collector has to normalize (paper
// §II-A) are introduced here, deliberately:
//   - syslog spells router names UPPERCASE and stamps device-local time;
//   - SNMP uses "<router>.net.example" FQDNs and UTC interval-end stamps;
//   - layer-1 logs use transport-device names and device-local time;
//   - TACACS and the route monitors use lowercase names and UTC.
#pragma once

#include "routing/bgp.h"
#include "routing/ospf.h"
#include "telemetry/records.h"
#include "topology/network.h"

namespace grca::sim {

class TelemetryEmitter {
 public:
  explicit TelemetryEmitter(const topology::Network& net) : net_(net) {}

  /// Router syslog line at UTC instant `utc` (recorded in local time).
  void syslog(topology::RouterId router, util::TimeSec utc, std::string body);

  /// SNMP reading for a router-level object ("cpu5min").
  void snmp_router(topology::RouterId router, util::TimeSec interval_end_utc,
                   std::string object, double value);

  /// SNMP reading for an interface-level object ("ifutil", "ifcorrupt").
  void snmp_interface(topology::InterfaceId iface,
                      util::TimeSec interval_end_utc, std::string object,
                      double value);

  /// Layer-1 device log line (restoration events etc.).
  void layer1(topology::Layer1DeviceId device, util::TimeSec utc,
              std::string body);

  /// TACACS command log entry.
  void tacacs(topology::RouterId router, util::TimeSec utc, std::string user,
              std::string command);

  /// OSPFMon observation of a metric change LSA. kDown / kCostedOut pass
  /// through as their numeric sentinels.
  void ospfmon(topology::LogicalLinkId link, util::TimeSec utc, int new_metric);

  /// BGP monitor observation of an announce/withdraw at a reflector.
  void bgpmon(const routing::BgpRoute& route, util::TimeSec utc, bool announce);

  /// Inter-PoP active probe reading ("loss" %, "delay" ms, "tput" Mb/s).
  void perf(topology::PopId ingress, topology::PopId egress, util::TimeSec utc,
            std::string metric, double value);

  /// CDN agent measurement toward a node ("rtt" ms, "tput" Mb/s).
  void cdn(topology::CdnNodeId node, util::Ipv4Addr client, util::TimeSec utc,
           std::string metric, double value);

  /// CDN server log reading (load average on one server of a node).
  void server_load(topology::CdnNodeId node, int server, util::TimeSec utc,
                   double load);

  /// CDN assignment-policy change record (server-side management log).
  void cdn_policy(topology::CdnNodeId node, util::TimeSec utc);

  /// Workflow system activity record.
  void workflow(topology::RouterId router, util::TimeSec utc,
                std::string activity);

  telemetry::RecordStream take() {
    telemetry::sort_stream(stream_);
    return std::move(stream_);
  }

  const topology::Network& network() const noexcept { return net_; }

 private:
  const util::TimeZone& router_zone(topology::RouterId router) const {
    return net_.pop(net_.router(router).pop).timezone;
  }

  const topology::Network& net_;
  telemetry::RecordStream stream_;
};

}  // namespace grca::sim
