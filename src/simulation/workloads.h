// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Study workload generators: month/fortnight-scale incident mixes calibrated
// to the root-cause distributions the paper reports (Tables IV, VI, VIII),
// plus benign background noise. Each study returns the raw telemetry stream
// and the ground-truth labels, ready to feed the RCA pipeline and score.
#pragma once

#include "simulation/scenario.h"

namespace grca::sim {

struct StudyOutput {
  telemetry::RecordStream records;
  std::vector<TruthEntry> truth;
  /// Client prefixes registered by the CDN study (symptom sampling reuses
  /// them); empty for the other studies.
  std::vector<util::Ipv4Prefix> client_prefixes;
};

// ---- §III-A: customer eBGP flaps (Table IV) --------------------------------

struct BgpStudyParams {
  util::TimeSec start = 0;         // filled with 2010-01-01 when 0
  int days = 30;
  int target_symptoms = 1500;      // eBGP flap instances to generate
  double noise = 1.0;              // benign-event scale factor
  std::uint64_t seed = 7;
};

StudyOutput run_bgp_study(const topology::Network& net,
                          const BgpStudyParams& params);

// ---- §III-B: CDN RTT degradations (Table VI) --------------------------------

struct CdnStudyParams {
  util::TimeSec start = 0;
  int days = 30;
  int target_symptoms = 1200;
  int client_prefixes = 60;        // external client populations
  std::uint64_t seed = 11;
  double noise = 1.0;
};

StudyOutput run_cdn_study(const topology::Network& net,
                          const CdnStudyParams& params);

// ---- §I motivating scenario: inter-PoP probe losses --------------------------

struct InnetStudyParams {
  util::TimeSec start = 0;
  int days = 30;
  int target_symptoms = 600;
  std::uint64_t seed = 19;
  double noise = 1.0;
  /// Illustrative cause mixture (the paper gives no table for this
  /// scenario): congestion / re-convergence / flap / unknown, in percent.
  double congestion_pct = 40.0;
  double reconvergence_pct = 25.0;
  double flap_pct = 15.0;
  double unknown_pct = 20.0;
};

StudyOutput run_innet_study(const topology::Network& net,
                            const InnetStudyParams& params);

// ---- §III-C: MVPN PIM adjacency changes (Table VIII) ------------------------

struct PimStudyParams {
  util::TimeSec start = 0;
  int days = 14;
  int target_symptoms = 1500;      // adjacency-change instances
  std::uint64_t seed = 13;
  double noise = 1.0;
};

StudyOutput run_pim_study(const topology::Network& net,
                          const PimStudyParams& params);

}  // namespace grca::sim
