// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Fault scenario engine: injects root-cause incidents into the simulated
// ISP and emits the full telemetry cascade each incident produces, with
// realistic protocol timers (e.g. the 180 s eBGP hold timer the paper's
// temporal rules model) and per-record timestamp jitter. Every injected
// incident appends ground-truth labels so RCA verdicts can be scored —
// something the paper could only do anecdotally against operator knowledge.
//
// The cascades implement the causal structure of the paper's diagnosis
// graphs (Figs. 4-6): layer-1 restoration -> interface flap -> line protocol
// flap -> eBGP flap; CPU overload -> hold-timer expiry -> eBGP flap;
// backbone events -> OSPF re-convergence -> path-dependent symptoms; etc.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "simulation/emitter.h"
#include "util/rng.h"

namespace grca::sim {

/// Ground-truth label for one symptom instance the engine injected.
struct TruthEntry {
  std::string symptom;  // symptom event name ("ebgp-flap", "pim-nbrchg", ...)
  std::string router;   // observing router (canonical name) or CDN node name
  std::string detail;   // neighbor IP / "<nbr-loopback>|<vpn>" / client IP
  util::TimeSec time;   // symptom start (UTC)
  std::string cause;    // expected root-cause event name
};

enum class RestorationKind { kSonet, kOpticalFast, kOpticalRegular };

/// Root-cause event names shared between the scenario engine (ground truth),
/// the knowledge library and the applications.
namespace cause {
inline constexpr const char* kInterfaceFlap = "interface-flap";
inline constexpr const char* kLineProtocolFlap = "line-protocol-flap";
inline constexpr const char* kRouterReboot = "router-reboot";
inline constexpr const char* kCustomerReset = "customer-reset-session";
inline constexpr const char* kCpuSpike = "cpu-high-spike";
inline constexpr const char* kCpuAvg = "cpu-high-avg";
inline constexpr const char* kEbgpHte = "ebgp-hte";
inline constexpr const char* kSonetRestoration = "sonet-restoration";
inline constexpr const char* kOpticalFast = "optical-restoration-fast";
inline constexpr const char* kOpticalRegular = "optical-restoration-regular";
inline constexpr const char* kUnknown = "unknown";
inline constexpr const char* kOspfReconvergence = "ospf-reconvergence";
inline constexpr const char* kLinkCongestion = "link-congestion";
inline constexpr const char* kLinkLoss = "link-loss";
inline constexpr const char* kBgpEgressChange = "bgp-egress-change";
inline constexpr const char* kCdnPolicyChange = "cdn-policy-change";
inline constexpr const char* kRouterCostInOut = "router-cost-inout";
inline constexpr const char* kLinkCostOutDown = "link-cost-outdown";
inline constexpr const char* kLinkCostInUp = "link-cost-inup";
inline constexpr const char* kPimConfigChange = "pim-config-change";
inline constexpr const char* kUplinkPimLoss = "uplink-pim-adjacency-change";
inline constexpr const char* kLinecardCrash = "linecard-crash";
inline constexpr const char* kBgpRouteLeak = "bgp-prefix-flood";
inline constexpr const char* kCdnServerIssue = "cdn-server-issue";
}  // namespace cause

class ScenarioEngine {
 public:
  ScenarioEngine(const topology::Network& net, routing::OspfSim& ospf,
                 routing::BgpSim& bgp, std::uint64_t seed);

  // ---- eBGP flap cascades (the Fig. 4 study) -----------------------------

  /// Customer-facing interface flap -> line protocol flap -> eBGP flap.
  /// `deeper_cause` overrides the ground-truth label when the flap itself was
  /// caused by something deeper (layer-1 restoration, line card crash).
  void customer_interface_flap(topology::CustomerSiteId site, util::TimeSec t,
                               const char* deeper_cause = nullptr);

  /// Layer-1 restoration on an access circuit: emits the transport-device
  /// log then flaps the customer port it feeds.
  void access_layer1_restoration(topology::PhysicalLinkId circuit,
                                 util::TimeSec t, RestorationKind kind);

  /// Line-protocol-only flap (keepalive loss; interface stays up).
  void line_protocol_flap(topology::CustomerSiteId site, util::TimeSec t);

  /// CPU spike (syslog threshold message) inducing hold-timer expiries on
  /// `sessions` eBGP sessions of the router.
  void cpu_spike(topology::RouterId router, util::TimeSec t, int sessions);

  /// Sustained CPU overload visible in the SNMP 5-minute average.
  void cpu_high_avg(topology::RouterId router, util::TimeSec t, int sessions);

  /// Customer-initiated administrative reset of one session.
  void customer_reset(topology::CustomerSiteId site, util::TimeSec t);

  /// Full router reboot: restart message, all ports flap, every eBGP session
  /// on the router flaps.
  void router_reboot(topology::RouterId router, util::TimeSec t);

  /// Hold-timer expiry with no other evidence (paper: 4.86% of flaps).
  void hte_unknown(topology::CustomerSiteId site, util::TimeSec t);

  /// eBGP flap with no evidence at all (paper: 10.95% "Unknown").
  void silent_flap(topology::CustomerSiteId site, util::TimeSec t);

  /// Line-card crash (Fig. 8 study): every customer port on the card flaps
  /// within ~3 minutes. The crash syslog signature is emitted but — as in
  /// the paper — is NOT part of the initial knowledge library.
  void linecard_crash(topology::LineCardId card, util::TimeSec t);

  /// Provisioning activity on a router (workflow log). With `causes_flaps`,
  /// reproduces the §IV-B bug: unrelated provisioning makes customer
  /// sessions HTE-flap while the CPU spikes.
  void provisioning(topology::RouterId router, util::TimeSec t,
                    bool causes_flaps);

  // ---- Backbone primitives -------------------------------------------------

  /// Backbone interface flap: syslog on both ends, OSPF down/up LSAs (a
  /// re-convergence), routing actually changes for `dur` seconds.
  void backbone_interface_flap(topology::LogicalLinkId link, util::TimeSec t,
                               util::TimeSec dur);

  /// Pure weight change (traffic-engineering tweak): OSPF re-convergence
  /// without any interface event.
  void ospf_weight_change(topology::LogicalLinkId link, util::TimeSec t,
                          int new_weight);

  /// Operator costs a link out / back in via router command (TACACS record +
  /// max-metric LSA).
  void cost_out_link(topology::LogicalLinkId link, util::TimeSec t);
  void cost_in_link(topology::LogicalLinkId link, util::TimeSec t);

  /// Operator costs a whole router out / in (maintenance).
  void cost_out_router(topology::RouterId router, util::TimeSec t);
  void cost_in_router(topology::RouterId router, util::TimeSec t);

  /// SNMP congestion / loss readings on a link (interval-end timestamps).
  void link_congestion(topology::LogicalLinkId link, util::TimeSec t,
                       double utilization);
  void link_loss(topology::LogicalLinkId link, util::TimeSec t,
                 double corrupted_packets);

  /// Correlated SRLG cut: a transport device fails and every access circuit
  /// whose layer-1 path rides it restores at once, flapping all the customer
  /// tails it feeds within ~2 minutes. Returns the number of circuits hit.
  int srlg_optical_cut(topology::Layer1DeviceId device, util::TimeSec t);

  /// BGP route leak: the customer session floods `prefixes` bogus /24
  /// announcements over ~45 s until the PER's max-prefix guard tears the
  /// session down (NOTIFICATION + eBGP flap), then withdraws them all.
  void bgp_route_leak(topology::CustomerSiteId site, util::TimeSec t,
                      int prefixes);

  /// Gray failure: a backbone link silently corrupts packets for `dur`
  /// seconds — interfaces stay up, no syslog — visible only as ifcorrupt
  /// SNMP counters plus probe loss on the PoP pairs in `probes` whose
  /// current path crosses the link.
  void gray_failure(topology::LogicalLinkId link, util::TimeSec start,
                    util::TimeSec dur,
                    const std::vector<std::pair<topology::PopId,
                                                topology::PopId>>& probes);

  // ---- PIM / MVPN cascades (the Fig. 6 study) -----------------------------

  /// Customer port flap at an MVPN site: the eBGP cascade plus PIM neighbor
  /// adjacency changes toward this PE at every other PE of the VPN.
  void mvpn_customer_flap(topology::CustomerSiteId site, util::TimeSec t);

  /// MVPN (de)provisioning on the PE of `site`: command log + adjacency
  /// changes at the other PEs.
  void pim_config_change(topology::CustomerSiteId site, util::TimeSec t);

  /// PE loses PIM adjacency on its uplink to the backbone; all its MVPN
  /// adjacencies drop.
  void uplink_pim_loss(topology::RouterId per, util::TimeSec t);

  /// Backbone event disturbing PE-PE PIM adjacencies of `vpn` whose path
  /// crosses the given link/router. Used for the cost-in/out and
  /// re-convergence rows of Table VIII.
  void pim_path_disturbance(const std::string& vpn,
                            topology::LogicalLinkId link, util::TimeSec t,
                            const char* truth_cause);
  void pim_router_cost_disturbance(const std::string& vpn,
                                   topology::RouterId router, util::TimeSec t);

  /// PIM adjacency change with no cause evidence.
  void pim_unknown(const std::string& vpn, util::TimeSec t);

  // ---- CDN cascades (the Fig. 5 study) ------------------------------------

  /// Registers an external client prefix reachable via the given egress
  /// routers (first is best by local-pref), announcing it in BGP + monitor.
  void add_client_prefix(util::Ipv4Prefix prefix,
                         std::vector<topology::RouterId> egresses,
                         util::TimeSec t);

  /// One RTT-degradation measurement (the CDN symptom).
  void cdn_rtt_increase(topology::CdnNodeId node, util::Ipv4Addr client,
                        util::TimeSec t, const char* truth_cause);

  /// CDN assignment policy change affecting several clients.
  void cdn_policy_change(topology::CdnNodeId node,
                         const std::vector<util::Ipv4Addr>& clients,
                         util::TimeSec t);

  /// Interdomain routing change: the preferred egress route for the client's
  /// prefix is withdrawn, moving the egress; RTT degrades.
  void cdn_egress_change(topology::CdnNodeId node, util::Ipv4Addr client,
                         util::Ipv4Prefix prefix, util::TimeSec t);

  /// Path-dependent degradations: the engine picks a link on the current
  /// CDN-node -> egress path and injects the named condition there.
  void cdn_path_congestion(topology::CdnNodeId node, util::Ipv4Addr client,
                           util::TimeSec t);
  void cdn_path_loss(topology::CdnNodeId node, util::Ipv4Addr client,
                     util::TimeSec t);
  void cdn_path_interface_flap(topology::CdnNodeId node, util::Ipv4Addr client,
                               util::TimeSec t);
  void cdn_path_reconvergence(topology::CdnNodeId node, util::Ipv4Addr client,
                              util::TimeSec t);

  /// Degradation with no internal evidence ("outside of our network").
  void cdn_outside(topology::CdnNodeId node, util::Ipv4Addr client,
                   util::TimeSec t);

  /// CDN server overload: a quarter of the node's servers run hot (server
  /// log load readings across two bins) and every affected client sees RTT
  /// degrade — the overlay symptom flood.
  void cdn_server_overload(topology::CdnNodeId node,
                           const std::vector<util::Ipv4Addr>& clients,
                           util::TimeSec t);

  // ---- In-network probe cascades (the §I motivating scenario) -------------

  /// Probe loss between two PoPs caused by congestion on a link of the
  /// current inter-PoP path.
  void innet_loss_congestion(topology::PopId a, topology::PopId b,
                             util::TimeSec t);
  /// Probe loss caused by a traffic-engineering weight change on the path.
  void innet_loss_reconvergence(topology::PopId a, topology::PopId b,
                                util::TimeSec t);
  /// Probe loss caused by a backbone interface flap on the path.
  void innet_loss_flap(topology::PopId a, topology::PopId b, util::TimeSec t);
  /// Probe loss with no internal evidence.
  void innet_loss_unknown(topology::PopId a, topology::PopId b,
                          util::TimeSec t);

  // ---- Background noise ----------------------------------------------------

  /// Benign SNMP polls (normal CPU / link utilization) across the interval,
  /// sampling `fraction` of devices per 5-minute bin.
  void background_snmp(util::TimeSec start, util::TimeSec end, double fraction);

  /// Benign CPU spike with no protocol impact.
  void noise_cpu_spike(topology::RouterId router, util::TimeSec t);

  /// Benign workflow activity with no impact.
  void noise_workflow(topology::RouterId router, util::TimeSec t,
                      std::string activity);

  // ---- Access ---------------------------------------------------------------

  TelemetryEmitter& emitter() noexcept { return emitter_; }
  util::Rng& rng() noexcept { return rng_; }
  const std::vector<TruthEntry>& truth() const noexcept { return truth_; }
  telemetry::RecordStream take_records() { return emitter_.take(); }
  const topology::Network& network() const noexcept { return net_; }

 private:
  /// Emits the down/up syslog + monitor records of one eBGP session flap and
  /// appends its ground-truth entry.
  void emit_ebgp_flap(topology::CustomerSiteId site, util::TimeSec down,
                      util::TimeSec up, const std::string& adj_reason,
                      const char* truth_cause);
  /// Emits a BGP NOTIFICATION line on the session's PER.
  void emit_notification(topology::CustomerSiteId site, util::TimeSec t,
                         bool sent, const std::string& code,
                         const std::string& reason);
  /// Emits PIM adjacency change pairs across a VPN when PE `down_pe` becomes
  /// unreachable for `dur` seconds.
  void emit_vpn_adjacency_flaps(const std::string& vpn,
                                topology::RouterId down_pe, util::TimeSec t,
                                util::TimeSec dur, const char* truth_cause);
  /// Picks `n` distinct customer sites attached to the router.
  std::vector<topology::CustomerSiteId> sites_on_router(
      topology::RouterId router) const;
  /// The PERs hosting sites of a VPN (deduplicated).
  std::vector<topology::RouterId> vpn_pers(const std::string& vpn) const;
  /// Current best path links from a CDN node's ingress toward the client.
  std::vector<topology::LogicalLinkId> cdn_path_links(topology::CdnNodeId node,
                                                      util::Ipv4Addr client,
                                                      util::TimeSec t) const;

  const topology::Network& net_;
  routing::OspfSim& ospf_;
  routing::BgpSim& bgp_;
  TelemetryEmitter emitter_;
  util::Rng rng_;
  std::vector<TruthEntry> truth_;
  std::uint32_t next_leak_prefix_ = 0xC6120000u;  // 198.18.0.0, RFC 2544 space
};

}  // namespace grca::sim
