// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Replay corpora: the on-disk data-directory layout the paper's platform
// consumes (daily config snapshots, layer-1 inventory, the raw telemetry
// archive, ground-truth labels), written and read as one unit. The grca
// CLI's simulate/diagnose/replay commands and the replay harness all share
// this code path, so a corpus recorded once replays deterministically —
// byte-identical inputs produce byte-identical archives.
#pragma once

#include <filesystem>

#include "simulation/scenario.h"
#include "topology/network.h"

namespace grca::sim {

/// One loaded corpus. `network` is rebuilt purely from the rendered configs
/// and inventory — the RCA-side view of the network, exactly what the
/// platform would know, not the simulator's internal state.
struct ReplayCorpus {
  topology::Network network;
  telemetry::RecordStream records;
  std::vector<TruthEntry> truth;  // empty when the corpus has no truth.tsv
};

/// Writes DIR/configs/<router>.cfg, DIR/inventory.txt, DIR/records.tsv and
/// — when `truth` is non-empty — DIR/truth.tsv. Creates DIR as needed.
void write_corpus(const std::filesystem::path& dir,
                  const topology::Network& net,
                  const telemetry::RecordStream& records,
                  const std::vector<TruthEntry>& truth);

/// Reads a corpus written by write_corpus (or assembled by hand in the same
/// layout). Throws ConfigError when configs/, inventory.txt or records.tsv
/// are missing; a missing truth.tsv just yields empty truth.
ReplayCorpus read_corpus(const std::filesystem::path& dir);

/// Reads only the truth labels (empty when DIR has no truth.tsv).
std::vector<TruthEntry> read_truth(const std::filesystem::path& dir);

}  // namespace grca::sim
