// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "simulation/scenario.h"

#include <algorithm>

namespace grca::sim {

namespace t = topology;
using telemetry::msg::bgp_adjchange;
using telemetry::msg::bgp_notification;
using telemetry::msg::cpu_threshold;
using telemetry::msg::link_updown;
using telemetry::msg::lineproto_updown;
using telemetry::msg::pim_nbrchg;
using telemetry::msg::sys_restart;
using util::TimeSec;

namespace {

/// Aligns t to the *end* of its 5-minute SNMP polling interval.
TimeSec snmp_bin_end(TimeSec t) { return (t / 300 + 1) * 300; }

std::string restoration_body(RestorationKind kind, const std::string& ckt) {
  switch (kind) {
    case RestorationKind::kSonet:
      return "APS: protection switch executed for circuit " + ckt;
    case RestorationKind::kOpticalFast:
      return "ODU restoration fast completed for circuit " + ckt;
    case RestorationKind::kOpticalRegular:
      return "ODU restoration regular completed for circuit " + ckt;
  }
  return "";
}

const char* restoration_cause(RestorationKind kind) {
  switch (kind) {
    case RestorationKind::kSonet: return cause::kSonetRestoration;
    case RestorationKind::kOpticalFast: return cause::kOpticalFast;
    case RestorationKind::kOpticalRegular: return cause::kOpticalRegular;
  }
  return cause::kUnknown;
}

}  // namespace

ScenarioEngine::ScenarioEngine(const t::Network& net, routing::OspfSim& ospf,
                               routing::BgpSim& bgp, std::uint64_t seed)
    : net_(net), ospf_(ospf), bgp_(bgp), emitter_(net), rng_(seed) {}

// ---- shared helpers ---------------------------------------------------------

void ScenarioEngine::emit_ebgp_flap(t::CustomerSiteId site_id, TimeSec down,
                                    TimeSec up, const std::string& adj_reason,
                                    const char* truth_cause) {
  const t::CustomerSite& site = net_.customer(site_id);
  t::RouterId per = net_.interface(site.attachment).router;
  std::string nbr = site.neighbor_ip.to_string();
  emitter_.syslog(per, down + rng_.range(0, 2),
                  bgp_adjchange(nbr, false, adj_reason));
  emitter_.syslog(per, up + rng_.range(0, 2), bgp_adjchange(nbr, true, ""));
  // The customer's routes are withdrawn and re-learned; the reflector feed
  // (BGP monitor) sees both.
  routing::BgpRoute route;
  route.prefix = site.announced;
  route.egress = per;
  route.next_hop = site.neighbor_ip;
  bgp_.withdraw(site.announced, per, down);
  emitter_.bgpmon(route, down, false);
  bgp_.announce(route, up);
  emitter_.bgpmon(route, up, true);
  truth_.push_back(TruthEntry{"ebgp-flap", net_.router(per).name, nbr, down,
                              truth_cause});
}

void ScenarioEngine::emit_notification(t::CustomerSiteId site_id, TimeSec time,
                                       bool sent, const std::string& code,
                                       const std::string& reason) {
  const t::CustomerSite& site = net_.customer(site_id);
  t::RouterId per = net_.interface(site.attachment).router;
  emitter_.syslog(per, time + rng_.range(0, 2),
                  bgp_notification(site.neighbor_ip.to_string(), sent, code,
                                   reason));
}

std::vector<t::CustomerSiteId> ScenarioEngine::sites_on_router(
    t::RouterId router) const {
  std::vector<t::CustomerSiteId> out;
  for (t::InterfaceId i : net_.router(router).interfaces) {
    const t::Interface& ifc = net_.interface(i);
    if (ifc.customer.valid()) out.push_back(ifc.customer);
  }
  return out;
}

std::vector<t::RouterId> ScenarioEngine::vpn_pers(const std::string& vpn) const {
  std::vector<t::RouterId> out;
  for (t::CustomerSiteId s : net_.mvpn_sites(vpn)) {
    t::RouterId per = net_.interface(net_.customer(s).attachment).router;
    if (std::find(out.begin(), out.end(), per) == out.end()) out.push_back(per);
  }
  return out;
}

// ---- eBGP flap cascades -----------------------------------------------------

void ScenarioEngine::customer_interface_flap(t::CustomerSiteId site_id,
                                             TimeSec start,
                                             const char* deeper_cause) {
  const t::CustomerSite& site = net_.customer(site_id);
  const t::Interface& port = net_.interface(site.attachment);
  t::RouterId per = port.router;
  TimeSec dur = rng_.range(2, 12);
  emitter_.syslog(per, start + rng_.range(0, 2), link_updown(port.name, false));
  emitter_.syslog(per, start + 1 + rng_.range(0, 2),
                  lineproto_updown(port.name, false));
  emitter_.syslog(per, start + dur + rng_.range(0, 2),
                  link_updown(port.name, true));
  emitter_.syslog(per, start + dur + 1 + rng_.range(0, 2),
                  lineproto_updown(port.name, true));
  // BGP fast external fallover: the session drops with the interface and
  // re-establishes some tens of seconds after it returns.
  emit_ebgp_flap(site_id, start + 2, start + dur + rng_.range(20, 45),
                 "Interface flap",
                 deeper_cause != nullptr ? deeper_cause : cause::kInterfaceFlap);
}

void ScenarioEngine::access_layer1_restoration(t::PhysicalLinkId circuit_id,
                                               TimeSec start,
                                               RestorationKind kind) {
  const t::PhysicalLink& ckt = net_.physical_link(circuit_id);
  if (!ckt.access_port.valid()) {
    throw ConfigError("access_layer1_restoration needs an access circuit");
  }
  for (t::Layer1DeviceId dev : ckt.path) {
    emitter_.layer1(dev, start, restoration_body(kind, ckt.circuit_id));
  }
  t::CustomerSiteId site = net_.interface(ckt.access_port).customer;
  customer_interface_flap(site, start + rng_.range(1, 4),
                          restoration_cause(kind));
}

int ScenarioEngine::srlg_optical_cut(t::Layer1DeviceId device, TimeSec start) {
  // One transport-device fault: every access circuit whose layer-1 path
  // rides the device restores within ~2 minutes — the correlated flap storm
  // an SRLG database would predict.
  int hit = 0;
  for (const t::PhysicalLink& pl : net_.physical_links()) {
    if (!pl.access_port.valid()) continue;
    if (std::find(pl.path.begin(), pl.path.end(), device) == pl.path.end()) {
      continue;
    }
    RestorationKind kind =
        pl.kind == t::Layer1Kind::kSonetRing
            ? RestorationKind::kSonet
            : (rng_.chance(0.3) ? RestorationKind::kOpticalFast
                                : RestorationKind::kOpticalRegular);
    access_layer1_restoration(pl.id, start + rng_.range(0, 120), kind);
    ++hit;
  }
  return hit;
}

void ScenarioEngine::bgp_route_leak(t::CustomerSiteId site_id, TimeSec start,
                                    int prefixes) {
  const t::CustomerSite& site = net_.customer(site_id);
  t::RouterId per = net_.interface(site.attachment).router;
  // The leaked routes are visible only on the reflector feed: the PER's
  // max-prefix guard tears the session down before they reach the RIB, so
  // the BgpSim routing state is deliberately left untouched.
  std::vector<routing::BgpRoute> leaked;
  for (int i = 0; i < prefixes; ++i) {
    routing::BgpRoute route;
    route.prefix = util::Ipv4Prefix(util::Ipv4Addr(next_leak_prefix_), 24);
    next_leak_prefix_ += 256;
    route.egress = per;
    route.next_hop = site.neighbor_ip;
    emitter_.bgpmon(route, start + (45 * i) / std::max(prefixes, 1), true);
    leaked.push_back(route);
  }
  TimeSec teardown = start + 45 + rng_.range(5, 25);
  for (const routing::BgpRoute& route : leaked) {
    emitter_.bgpmon(route, teardown + 1 + rng_.range(0, 4), false);
  }
  emit_notification(site_id, teardown, /*sent=*/true, "3/1",
                    "maximum prefix count exceeded");
  emit_ebgp_flap(site_id, teardown, teardown + rng_.range(60, 240), "",
                 cause::kBgpRouteLeak);
}

void ScenarioEngine::line_protocol_flap(t::CustomerSiteId site_id,
                                        TimeSec start) {
  const t::CustomerSite& site = net_.customer(site_id);
  const t::Interface& port = net_.interface(site.attachment);
  TimeSec dur = rng_.range(2, 12);
  emitter_.syslog(port.router, start + rng_.range(0, 2),
                  lineproto_updown(port.name, false));
  emitter_.syslog(port.router, start + dur + rng_.range(0, 2),
                  lineproto_updown(port.name, true));
  emit_ebgp_flap(site_id, start + 1, start + dur + rng_.range(20, 45), "",
                 cause::kLineProtocolFlap);
}

void ScenarioEngine::cpu_spike(t::RouterId router, TimeSec start,
                               int sessions) {
  emitter_.syslog(router, start,
                  cpu_threshold(90 + static_cast<int>(rng_.range(0, 9))));
  auto sites = sites_on_router(router);
  for (int i = 0; i < sessions && !sites.empty(); ++i) {
    t::CustomerSiteId site = sites[rng_.below(sites.size())];
    // The hold timer expires up to ~30 s after the overload begins.
    TimeSec down = start + rng_.range(1, 30);
    emit_notification(site, down, /*sent=*/true, "4/0", "hold time expired");
    emit_ebgp_flap(site, down, down + rng_.range(30, 90), "", cause::kCpuSpike);
  }
}

void ScenarioEngine::cpu_high_avg(t::RouterId router, TimeSec start,
                                  int sessions) {
  TimeSec bin = snmp_bin_end(start);
  emitter_.snmp_router(router, bin, "cpu5min", rng_.uniform(85.0, 99.0));
  auto sites = sites_on_router(router);
  for (int i = 0; i < sessions && !sites.empty(); ++i) {
    t::CustomerSiteId site = sites[rng_.below(sites.size())];
    TimeSec down = start + rng_.range(1, 120);
    emit_notification(site, down, true, "4/0", "hold time expired");
    emit_ebgp_flap(site, down, down + rng_.range(30, 90), "", cause::kCpuAvg);
  }
}

void ScenarioEngine::customer_reset(t::CustomerSiteId site, TimeSec start) {
  emit_notification(site, start, /*sent=*/false, "6/4", "administrative reset");
  emit_ebgp_flap(site, start, start + rng_.range(20, 120), "",
                 cause::kCustomerReset);
}

void ScenarioEngine::router_reboot(t::RouterId router, TimeSec start) {
  emitter_.syslog(router, start, sys_restart());
  TimeSec back = start + rng_.range(120, 300);
  for (t::InterfaceId i : net_.router(router).interfaces) {
    const t::Interface& ifc = net_.interface(i);
    emitter_.syslog(router, start + rng_.range(0, 3),
                    link_updown(ifc.name, false));
    emitter_.syslog(router, back + rng_.range(0, 3),
                    link_updown(ifc.name, true));
  }
  for (t::CustomerSiteId site : sites_on_router(router)) {
    emit_ebgp_flap(site, start + rng_.range(0, 3), back + rng_.range(20, 60),
                   "", cause::kRouterReboot);
  }
}

void ScenarioEngine::hte_unknown(t::CustomerSiteId site, TimeSec start) {
  emit_notification(site, start, true, "4/0", "hold time expired");
  emit_ebgp_flap(site, start, start + rng_.range(30, 120), "",
                 cause::kEbgpHte);
}

void ScenarioEngine::silent_flap(t::CustomerSiteId site, TimeSec start) {
  emit_ebgp_flap(site, start, start + rng_.range(20, 90), "", cause::kUnknown);
}

void ScenarioEngine::linecard_crash(t::LineCardId card_id, TimeSec start) {
  const t::LineCard& card = net_.line_card(card_id);
  emitter_.syslog(card.router, start, telemetry::msg::linecard_crash(card.slot));
  // Every customer port on the card flaps within ~3 minutes (Fig. 8).
  for (t::InterfaceId i : card.interfaces) {
    const t::Interface& ifc = net_.interface(i);
    if (!ifc.customer.valid()) continue;
    customer_interface_flap(ifc.customer, start + rng_.range(1, 170),
                            cause::kLinecardCrash);
  }
}

void ScenarioEngine::provisioning(t::RouterId router, TimeSec start,
                                  bool causes_flaps) {
  emitter_.workflow(router, start, "provisioning");
  if (!causes_flaps) return;
  // The §IV-B software bug: unrelated provisioning work drives the route
  // processor hot and customer sessions HTE out.
  cpu_spike(router, start + rng_.range(10, 60),
            1 + static_cast<int>(rng_.range(0, 2)));
}

// ---- backbone primitives ------------------------------------------------------

void ScenarioEngine::backbone_interface_flap(t::LogicalLinkId link,
                                             TimeSec start, TimeSec dur) {
  const t::LogicalLink& l = net_.link(link);
  const t::Interface& a = net_.interface(l.side_a);
  const t::Interface& b = net_.interface(l.side_b);
  int old_weight = ospf_.weight_at(link, start);
  if (old_weight == routing::kDown) return;  // already down; nothing new
  emitter_.syslog(a.router, start + rng_.range(0, 2),
                  link_updown(a.name, false));
  emitter_.syslog(b.router, start + rng_.range(0, 2),
                  link_updown(b.name, false));
  emitter_.syslog(a.router, start + 1 + rng_.range(0, 2),
                  lineproto_updown(a.name, false));
  emitter_.syslog(b.router, start + 1 + rng_.range(0, 2),
                  lineproto_updown(b.name, false));
  ospf_.set_weight(link, start, routing::kDown);
  emitter_.ospfmon(link, start + rng_.range(0, 2), routing::kDown);
  TimeSec up = start + dur;
  emitter_.syslog(a.router, up + rng_.range(0, 2), link_updown(a.name, true));
  emitter_.syslog(b.router, up + rng_.range(0, 2), link_updown(b.name, true));
  emitter_.syslog(a.router, up + 1 + rng_.range(0, 2),
                  lineproto_updown(a.name, true));
  emitter_.syslog(b.router, up + 1 + rng_.range(0, 2),
                  lineproto_updown(b.name, true));
  ospf_.set_weight(link, up, old_weight);
  emitter_.ospfmon(link, up + rng_.range(0, 2), old_weight);
}

void ScenarioEngine::ospf_weight_change(t::LogicalLinkId link, TimeSec start,
                                        int new_weight) {
  ospf_.set_weight(link, start, new_weight);
  emitter_.ospfmon(link, start + rng_.range(0, 2), new_weight);
}

void ScenarioEngine::cost_out_link(t::LogicalLinkId link, TimeSec start) {
  const t::LogicalLink& l = net_.link(link);
  const t::Interface& a = net_.interface(l.side_a);
  emitter_.tacacs(a.router, start - rng_.range(1, 5), "netops",
                  "set ospf metric 65535 interface " + a.name);
  ospf_.set_weight(link, start, routing::kCostedOut);
  emitter_.ospfmon(link, start + rng_.range(0, 2), routing::kCostedOut);
}

void ScenarioEngine::cost_in_link(t::LogicalLinkId link, TimeSec start) {
  const t::LogicalLink& l = net_.link(link);
  const t::Interface& a = net_.interface(l.side_a);
  emitter_.tacacs(a.router, start - rng_.range(1, 5), "netops",
                  "set ospf metric " + std::to_string(l.ospf_weight) +
                      " interface " + a.name);
  ospf_.set_weight(link, start, l.ospf_weight);
  emitter_.ospfmon(link, start + rng_.range(0, 2), l.ospf_weight);
}

void ScenarioEngine::cost_out_router(t::RouterId router, TimeSec start) {
  emitter_.tacacs(router, start - rng_.range(1, 5), "netops",
                  "router ospf max-metric router-lsa");
  for (t::LogicalLinkId link : net_.links_of_router(router)) {
    if (ospf_.weight_at(link, start) == routing::kDown) continue;
    try {
      ospf_.set_weight(link, start, routing::kCostedOut);
    } catch (const ConfigError&) {
      continue;  // link already has a later-dated change; leave it be
    }
    emitter_.ospfmon(link, start + rng_.range(0, 2), routing::kCostedOut);
  }
}

void ScenarioEngine::cost_in_router(t::RouterId router, TimeSec start) {
  emitter_.tacacs(router, start - rng_.range(1, 5), "netops",
                  "router ospf no max-metric router-lsa");
  for (t::LogicalLinkId link : net_.links_of_router(router)) {
    if (ospf_.weight_at(link, start) != routing::kCostedOut) continue;
    int w = net_.link(link).ospf_weight;
    try {
      ospf_.set_weight(link, start, w);
    } catch (const ConfigError&) {
      continue;
    }
    emitter_.ospfmon(link, start + rng_.range(0, 2), w);
  }
}

void ScenarioEngine::link_congestion(t::LogicalLinkId link, TimeSec start,
                                     double utilization) {
  const t::LogicalLink& l = net_.link(link);
  TimeSec bin = snmp_bin_end(start);
  emitter_.snmp_interface(l.side_a, bin, "ifutil", utilization);
  emitter_.snmp_interface(l.side_a, bin + 300, "ifutil",
                          utilization - rng_.uniform(0.0, 5.0));
}

void ScenarioEngine::link_loss(t::LogicalLinkId link, TimeSec start,
                               double corrupted_packets) {
  const t::LogicalLink& l = net_.link(link);
  emitter_.snmp_interface(l.side_a, snmp_bin_end(start), "ifcorrupt",
                          corrupted_packets);
}

// ---- PIM / MVPN cascades -------------------------------------------------------

void ScenarioEngine::emit_vpn_adjacency_flaps(const std::string& vpn,
                                              t::RouterId down_pe,
                                              TimeSec start, TimeSec dur,
                                              const char* truth_cause) {
  std::string down_loopback = net_.router(down_pe).loopback.to_string();
  for (t::RouterId pe : vpn_pers(vpn)) {
    if (pe == down_pe) continue;
    TimeSec at = start + rng_.range(0, 3);
    emitter_.syslog(pe, at, pim_nbrchg(down_loopback, vpn, false));
    emitter_.syslog(pe, start + dur + rng_.range(0, 3),
                    pim_nbrchg(down_loopback, vpn, true));
    truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(pe).name,
                                down_loopback + "|" + vpn, at, truth_cause});
    // The failing PE sees the reverse adjacency drop as well.
    std::string pe_loopback = net_.router(pe).loopback.to_string();
    TimeSec at2 = start + rng_.range(0, 3);
    emitter_.syslog(down_pe, at2, pim_nbrchg(pe_loopback, vpn, false));
    emitter_.syslog(down_pe, start + dur + rng_.range(0, 3),
                    pim_nbrchg(pe_loopback, vpn, true));
    truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(down_pe).name,
                                pe_loopback + "|" + vpn, at2, truth_cause});
  }
}

void ScenarioEngine::mvpn_customer_flap(t::CustomerSiteId site_id,
                                        TimeSec start) {
  const t::CustomerSite& site = net_.customer(site_id);
  if (site.mvpn.empty()) {
    throw ConfigError("mvpn_customer_flap: site is not in an MVPN");
  }
  t::RouterId pe = net_.interface(site.attachment).router;
  customer_interface_flap(site_id, start);
  emit_vpn_adjacency_flaps(site.mvpn, pe, start + rng_.range(2, 6),
                           rng_.range(10, 60), cause::kInterfaceFlap);
}

void ScenarioEngine::pim_config_change(t::CustomerSiteId site_id,
                                       TimeSec start) {
  const t::CustomerSite& site = net_.customer(site_id);
  if (site.mvpn.empty()) {
    throw ConfigError("pim_config_change: site is not in an MVPN");
  }
  t::RouterId pe = net_.interface(site.attachment).router;
  const char* op = rng_.chance(0.5) ? "provision" : "deprovision";
  emitter_.tacacs(pe, start, "provisioning",
                  std::string("mvpn ") + op + " vrf " + site.mvpn);
  emit_vpn_adjacency_flaps(site.mvpn, pe, start + rng_.range(1, 10),
                           rng_.range(10, 60), cause::kPimConfigChange);
}

void ScenarioEngine::uplink_pim_loss(t::RouterId per, TimeSec start) {
  auto links = net_.links_of_router(per);
  if (links.empty()) throw ConfigError("uplink_pim_loss: router has no uplink");
  t::RouterId uplink_nbr = net_.link_peer(links[rng_.below(links.size())], per);
  // The PE loses its *backbone-facing* PIM adjacency (vrf "default")...
  emitter_.syslog(per, start,
                  pim_nbrchg(net_.router(uplink_nbr).loopback.to_string(),
                             "default", false));
  emitter_.syslog(per, start + rng_.range(20, 60),
                  pim_nbrchg(net_.router(uplink_nbr).loopback.to_string(),
                             "default", true));
  // ...and consequently every MVPN adjacency it maintains drops.
  std::vector<std::string> vpns;
  for (t::CustomerSiteId s : sites_on_router(per)) {
    const std::string& vpn = net_.customer(s).mvpn;
    if (!vpn.empty() && std::find(vpns.begin(), vpns.end(), vpn) == vpns.end()) {
      vpns.push_back(vpn);
    }
  }
  for (const std::string& vpn : vpns) {
    emit_vpn_adjacency_flaps(vpn, per, start + rng_.range(1, 5),
                             rng_.range(20, 60), cause::kUplinkPimLoss);
  }
}

void ScenarioEngine::pim_path_disturbance(const std::string& vpn,
                                          t::LogicalLinkId link, TimeSec start,
                                          const char* truth_cause) {
  // Inject the backbone condition first.
  std::string_view kind = truth_cause;
  if (kind == cause::kLinkCostOutDown) {
    cost_out_link(link, start);
    // Maintenance ends: the link is costed back in, so the network is not
    // progressively drained of capacity over a multi-week study.
    cost_in_link(link, start + rng_.range(600, 3600));
  } else if (kind == cause::kLinkCostInUp) {
    // Must be costed out first for cost-in to be meaningful.
    if (ospf_.weight_at(link, start) != routing::kCostedOut) {
      ospf_.set_weight(link, start - 1, routing::kCostedOut);
    }
    cost_in_link(link, start);
  } else {  // plain re-convergence
    int w = ospf_.weight_at(link, start);
    if (w == routing::kDown || w == routing::kCostedOut) return;
    ospf_weight_change(link, start, w + static_cast<int>(rng_.range(1, 15)));
  }
  // PIM hellos ride the PE-PE paths; pairs whose path crossed the link see a
  // transient adjacency change. For cost-out the relevant path is the
  // pre-change one (the link was carrying the hellos); for cost-in it is the
  // post-change one (traffic shifts onto the restored link).
  util::TimeSec path_time = kind == cause::kLinkCostInUp ? start + 1 : start - 1;
  auto pers = vpn_pers(vpn);
  std::string v = vpn;
  for (std::size_t i = 0; i < pers.size(); ++i) {
    for (std::size_t j = i + 1; j < pers.size(); ++j) {
      auto links = ospf_.links_on_paths(pers[i], pers[j], path_time);
      if (std::find(links.begin(), links.end(), link) == links.end()) continue;
      TimeSec at = start + rng_.range(1, 5);
      TimeSec dur = rng_.range(5, 40);
      std::string li = net_.router(pers[i]).loopback.to_string();
      std::string lj = net_.router(pers[j]).loopback.to_string();
      emitter_.syslog(pers[i], at, pim_nbrchg(lj, v, false));
      emitter_.syslog(pers[i], at + dur, pim_nbrchg(lj, v, true));
      truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(pers[i]).name,
                                  lj + "|" + v, at, truth_cause});
      emitter_.syslog(pers[j], at, pim_nbrchg(li, v, false));
      emitter_.syslog(pers[j], at + dur, pim_nbrchg(li, v, true));
      truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(pers[j]).name,
                                  li + "|" + v, at, truth_cause});
    }
  }
}

void ScenarioEngine::pim_router_cost_disturbance(const std::string& vpn,
                                                 t::RouterId router,
                                                 TimeSec start) {
  bool out = rng_.chance(0.5);
  TimeSec down_time = out ? start : start - rng_.range(3600, 10800);
  // Abort cleanly (no records, no truth) when any link of the router already
  // has a later-dated change: a partially-visible cost-out would produce
  // unexplainable symptoms.
  for (t::LogicalLinkId link : net_.links_of_router(router)) {
    if (ospf_.last_change(link) >= down_time - 1) return;
  }
  if (out) {
    cost_out_router(router, start);
    cost_in_router(router, start + rng_.range(600, 3600));
  } else {
    // The maintenance began hours earlier (monitored then, too); the
    // adjacency-disturbing observable is the cost-in at `start`.
    cost_out_router(router, down_time);
    cost_in_router(router, start);
  }
  auto pers = vpn_pers(vpn);
  for (std::size_t i = 0; i < pers.size(); ++i) {
    for (std::size_t j = i + 1; j < pers.size(); ++j) {
      auto routers = ospf_.routers_on_paths(pers[i], pers[j], start - 2);
      if (std::find(routers.begin(), routers.end(), router) == routers.end()) {
        continue;
      }
      if (router == pers[i] || router == pers[j]) continue;
      TimeSec at = start + rng_.range(1, 5);
      TimeSec dur = rng_.range(5, 40);
      std::string li = net_.router(pers[i]).loopback.to_string();
      std::string lj = net_.router(pers[j]).loopback.to_string();
      emitter_.syslog(pers[i], at, pim_nbrchg(lj, vpn, false));
      emitter_.syslog(pers[i], at + dur, pim_nbrchg(lj, vpn, true));
      truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(pers[i]).name,
                                  lj + "|" + vpn, at, cause::kRouterCostInOut});
      emitter_.syslog(pers[j], at, pim_nbrchg(li, vpn, false));
      emitter_.syslog(pers[j], at + dur, pim_nbrchg(li, vpn, true));
      truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(pers[j]).name,
                                  li + "|" + vpn, at, cause::kRouterCostInOut});
    }
  }
}

void ScenarioEngine::pim_unknown(const std::string& vpn, TimeSec start) {
  auto pers = vpn_pers(vpn);
  if (pers.size() < 2) return;
  t::RouterId a = pers[rng_.below(pers.size())];
  t::RouterId b = a;
  while (b == a) b = pers[rng_.below(pers.size())];
  TimeSec dur = rng_.range(5, 40);
  std::string lb = net_.router(b).loopback.to_string();
  emitter_.syslog(a, start, pim_nbrchg(lb, vpn, false));
  emitter_.syslog(a, start + dur, pim_nbrchg(lb, vpn, true));
  truth_.push_back(TruthEntry{"pim-adjacency-flap", net_.router(a).name,
                              lb + "|" + vpn, start, cause::kUnknown});
}

// ---- CDN cascades -------------------------------------------------------------

void ScenarioEngine::add_client_prefix(util::Ipv4Prefix prefix,
                                       std::vector<t::RouterId> egresses,
                                       TimeSec start) {
  int lp = 200;
  for (t::RouterId egress : egresses) {
    routing::BgpRoute route;
    route.prefix = prefix;
    route.egress = egress;
    route.next_hop = util::Ipv4Addr(prefix.address().value() + 1);
    route.local_pref = lp;
    route.as_path_len = 2;
    bgp_.announce(route, start);
    emitter_.bgpmon(route, start, true);
    lp -= 50;
  }
}

std::vector<t::LogicalLinkId> ScenarioEngine::cdn_path_links(
    t::CdnNodeId node, util::Ipv4Addr client, TimeSec time) const {
  const t::CdnNode& cdn = net_.cdn_node(node);
  if (cdn.ingress_routers.empty()) return {};
  t::RouterId ingress = cdn.ingress_routers[0];
  auto egress = bgp_.best_egress(ingress, client, time);
  if (!egress || *egress == ingress) return {};
  return ospf_.links_on_paths(ingress, *egress, time);
}

void ScenarioEngine::cdn_rtt_increase(t::CdnNodeId node, util::Ipv4Addr client,
                                      TimeSec start, const char* truth_cause) {
  emitter_.cdn(node, client, start, "rtt", rng_.uniform(150.0, 400.0));
  truth_.push_back(TruthEntry{"cdn-rtt-increase", net_.cdn_node(node).name,
                              client.to_string(), start, truth_cause});
}

void ScenarioEngine::cdn_policy_change(t::CdnNodeId node,
                                       const std::vector<util::Ipv4Addr>& clients,
                                       TimeSec start) {
  emitter_.cdn_policy(node, start);
  for (util::Ipv4Addr client : clients) {
    cdn_rtt_increase(node, client, start + rng_.range(5, 120),
                     cause::kCdnPolicyChange);
  }
}

void ScenarioEngine::cdn_egress_change(t::CdnNodeId node,
                                       util::Ipv4Addr client,
                                       util::Ipv4Prefix prefix, TimeSec start) {
  const t::CdnNode& cdn = net_.cdn_node(node);
  t::RouterId ingress = cdn.ingress_routers[0];
  auto best = bgp_.best_route(ingress, client, start - 1);
  if (!best) return;
  bgp_.withdraw(prefix, best->egress, start);
  emitter_.bgpmon(*best, start, false);
  cdn_rtt_increase(node, client, start + rng_.range(5, 60),
                   cause::kBgpEgressChange);
  // The far-end ISP typically restores the better path within hours.
  TimeSec restore = start + rng_.range(600, 7200);
  bgp_.announce(*best, restore);
  emitter_.bgpmon(*best, restore, true);
}

void ScenarioEngine::cdn_path_congestion(t::CdnNodeId node,
                                         util::Ipv4Addr client, TimeSec start) {
  auto links = cdn_path_links(node, client, start);
  if (links.empty()) return;
  link_congestion(links[rng_.below(links.size())], start,
                  rng_.uniform(82.0, 98.0));
  cdn_rtt_increase(node, client, start + rng_.range(5, 200),
                   cause::kLinkCongestion);
}

void ScenarioEngine::cdn_path_loss(t::CdnNodeId node, util::Ipv4Addr client,
                                   TimeSec start) {
  auto links = cdn_path_links(node, client, start);
  if (links.empty()) return;
  link_loss(links[rng_.below(links.size())], start, rng_.uniform(120.0, 900.0));
  cdn_rtt_increase(node, client, start + rng_.range(5, 200), cause::kLinkLoss);
}

void ScenarioEngine::cdn_path_interface_flap(t::CdnNodeId node,
                                             util::Ipv4Addr client,
                                             TimeSec start) {
  auto links = cdn_path_links(node, client, start);
  if (links.empty()) return;
  backbone_interface_flap(links[rng_.below(links.size())], start,
                          rng_.range(5, 60));
  cdn_rtt_increase(node, client, start + rng_.range(2, 30),
                   cause::kInterfaceFlap);
}

void ScenarioEngine::cdn_path_reconvergence(t::CdnNodeId node,
                                            util::Ipv4Addr client,
                                            TimeSec start) {
  auto links = cdn_path_links(node, client, start);
  if (links.empty()) return;
  t::LogicalLinkId link = links[rng_.below(links.size())];
  int w = ospf_.weight_at(link, start);
  if (w == routing::kDown || w == routing::kCostedOut) return;
  ospf_weight_change(link, start, w + static_cast<int>(rng_.range(1, 10)));
  cdn_rtt_increase(node, client, start + rng_.range(2, 30),
                   cause::kOspfReconvergence);
}

void ScenarioEngine::cdn_outside(t::CdnNodeId node, util::Ipv4Addr client,
                                 TimeSec start) {
  cdn_rtt_increase(node, client, start, cause::kUnknown);
}

void ScenarioEngine::cdn_server_overload(
    t::CdnNodeId node, const std::vector<util::Ipv4Addr>& clients,
    TimeSec start) {
  const t::CdnNode& cdn = net_.cdn_node(node);
  int hot = std::max(1, cdn.server_count / 4);
  TimeSec bin = snmp_bin_end(start);
  for (int s = 0; s < hot; ++s) {
    emitter_.server_load(node, s, bin, rng_.uniform(0.92, 1.0));
    emitter_.server_load(node, s, bin + 300, rng_.uniform(0.92, 1.0));
  }
  // Clients degrade after the first hot reading so the diagnostic window
  // (start-end 5/300 on the load event) always covers the symptom.
  for (util::Ipv4Addr client : clients) {
    cdn_rtt_increase(node, client, bin + rng_.range(0, 200),
                     cause::kCdnServerIssue);
  }
}

// ---- in-network probe cascades ---------------------------------------------------

namespace {
/// Representative probe anchor: the lexicographically smallest core router
/// of the PoP (matches LocationMapper's pop-pair endpoint choice, which must
/// be stable across inventory enumeration orders).
t::RouterId pop_core(const t::Network& net, t::PopId pop) {
  const t::Router* best = nullptr;
  for (const t::Router& r : net.routers()) {
    if (r.pop != pop || r.role != t::RouterRole::kCore) continue;
    if (best == nullptr || r.name < best->name) best = &r;
  }
  if (best == nullptr) throw ConfigError("pop has no core router");
  return best->id;
}
}  // namespace

void ScenarioEngine::gray_failure(
    t::LogicalLinkId link, TimeSec start, TimeSec dur,
    const std::vector<std::pair<t::PopId, t::PopId>>& probes) {
  const t::LogicalLink& l = net_.link(link);
  // The link corrupts packets but never goes down: no syslog, no OSPF event
  // — only the ifcorrupt counters climb, bin after bin.
  for (TimeSec bin = snmp_bin_end(start); bin <= start + dur; bin += 300) {
    emitter_.snmp_interface(l.side_a, bin, "ifcorrupt",
                            rng_.uniform(150.0, 900.0));
  }
  for (const auto& [a, b] : probes) {
    t::RouterId ra = pop_core(net_, a), rb = pop_core(net_, b);
    auto links = ospf_.links_on_paths(ra, rb, start);
    if (std::find(links.begin(), links.end(), link) == links.end()) continue;
    TimeSec at = start + rng_.range(30, 250);
    emitter_.perf(a, b, at, "loss", rng_.uniform(1.5, 6.0));
    truth_.push_back(TruthEntry{"innet-loss-increase", net_.pop(a).name,
                                net_.pop(b).name, at, cause::kLinkLoss});
  }
}

void ScenarioEngine::innet_loss_congestion(t::PopId a, t::PopId b,
                                           TimeSec start) {
  t::RouterId ra = pop_core(net_, a), rb = pop_core(net_, b);
  auto links = ospf_.links_on_paths(ra, rb, start);
  if (links.empty()) return;
  link_congestion(links[rng_.below(links.size())], start,
                  rng_.uniform(82.0, 98.0));
  TimeSec at = start + rng_.range(30, 250);
  emitter_.perf(a, b, at, "loss", rng_.uniform(1.5, 8.0));
  truth_.push_back(TruthEntry{"innet-loss-increase", net_.pop(a).name,
                              net_.pop(b).name, at, cause::kLinkCongestion});
}

void ScenarioEngine::innet_loss_reconvergence(t::PopId a, t::PopId b,
                                              TimeSec start) {
  t::RouterId ra = pop_core(net_, a), rb = pop_core(net_, b);
  auto links = ospf_.links_on_paths(ra, rb, start);
  if (links.empty()) return;
  t::LogicalLinkId link = links[rng_.below(links.size())];
  int w = ospf_.weight_at(link, start);
  if (w == routing::kDown || w == routing::kCostedOut) return;
  ospf_weight_change(link, start, w + static_cast<int>(rng_.range(1, 10)));
  TimeSec at = start + rng_.range(2, 40);
  emitter_.perf(a, b, at, "loss", rng_.uniform(1.5, 6.0));
  truth_.push_back(TruthEntry{"innet-loss-increase", net_.pop(a).name,
                              net_.pop(b).name, at,
                              cause::kOspfReconvergence});
}

void ScenarioEngine::innet_loss_flap(t::PopId a, t::PopId b, TimeSec start) {
  t::RouterId ra = pop_core(net_, a), rb = pop_core(net_, b);
  auto links = ospf_.links_on_paths(ra, rb, start);
  if (links.empty()) return;
  backbone_interface_flap(links[rng_.below(links.size())], start,
                          rng_.range(5, 45));
  TimeSec at = start + rng_.range(2, 40);
  emitter_.perf(a, b, at, "loss", rng_.uniform(2.0, 9.0));
  truth_.push_back(TruthEntry{"innet-loss-increase", net_.pop(a).name,
                              net_.pop(b).name, at, cause::kInterfaceFlap});
}

void ScenarioEngine::innet_loss_unknown(t::PopId a, t::PopId b,
                                        TimeSec start) {
  emitter_.perf(a, b, start, "loss", rng_.uniform(1.2, 4.0));
  truth_.push_back(TruthEntry{"innet-loss-increase", net_.pop(a).name,
                              net_.pop(b).name, start, cause::kUnknown});
}

// ---- background noise -----------------------------------------------------------

void ScenarioEngine::background_snmp(TimeSec start, TimeSec end,
                                     double fraction) {
  for (TimeSec bin = snmp_bin_end(start); bin <= end; bin += 300) {
    for (const t::Router& r : net_.routers()) {
      if (!rng_.chance(fraction)) continue;
      emitter_.snmp_router(r.id, bin, "cpu5min", rng_.uniform(5.0, 45.0));
    }
    for (const t::LogicalLink& l : net_.links()) {
      if (!rng_.chance(fraction)) continue;
      emitter_.snmp_interface(l.side_a, bin, "ifutil", rng_.uniform(10.0, 60.0));
    }
  }
}

void ScenarioEngine::noise_cpu_spike(t::RouterId router, TimeSec start) {
  emitter_.syslog(router, start,
                  cpu_threshold(90 + static_cast<int>(rng_.range(0, 9))));
}

void ScenarioEngine::noise_workflow(t::RouterId router, TimeSec start,
                                    std::string activity) {
  emitter_.workflow(router, start, std::move(activity));
}

}  // namespace grca::sim
