// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Benchmark fault-scenario classes: named, seed-deterministic incident mixes
// that go beyond the paper's study tables — maintenance-window symptom
// storms, correlated SRLG optical cuts, BGP route leaks, gray failures with
// partial packet loss, and CDN/overlay symptom floods. Each class produces a
// StudyOutput (telemetry + TruthEntry ground truth) through the same
// ScenarioEngine cascade machinery the §III studies use, so any class runs
// on any imported topology and scores through the same pipeline.
#pragma once

#include <string_view>
#include <vector>

#include "simulation/workloads.h"

namespace grca::sim {

enum class ScenarioClass {
  kMaintenanceStorm,  // night maintenance windows: cost-outs, reboots, flaps
  kSrlgCut,           // transport-device faults hitting whole SRLGs at once
  kRouteLeak,         // customer sessions flooding prefixes until max-prefix
  kGrayFailure,       // silent packet corruption: SNMP + probe loss only
  kCdnFlood,          // CDN policy changes and server overloads en masse
};

/// Every class, in canonical (scorecard) order.
std::vector<ScenarioClass> all_scenario_classes();

/// Canonical kebab-case name ("maintenance-storm", "srlg-cut", ...).
const char* to_string(ScenarioClass c);

/// Inverse of to_string; throws grca::ParseError on an unknown name.
ScenarioClass parse_scenario_class(std::string_view name);

/// The application whose diagnosis graph scores this class
/// ("bgp" | "innet" | "cdn").
const char* scenario_app(ScenarioClass c);

struct ScenarioParams {
  util::TimeSec start = 0;     // filled with 2010-01-01 when 0
  int days = 7;
  int target_symptoms = 300;   // ground-truth symptom instances to reach
  double noise = 1.0;          // benign-event scale factor
  std::uint64_t seed = 29;
};

/// Runs one scenario class on the given network. Deterministic in
/// (class, network, params).
StudyOutput run_scenario(ScenarioClass c, const topology::Network& net,
                         const ScenarioParams& params);

}  // namespace grca::sim
