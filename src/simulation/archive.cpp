// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "simulation/archive.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "telemetry/records_io.h"
#include "topology/config.h"
#include "util/strings.h"

namespace grca::sim {

namespace fs = std::filesystem;

void write_corpus(const fs::path& dir, const topology::Network& net,
                  const telemetry::RecordStream& records,
                  const std::vector<TruthEntry>& truth) {
  fs::create_directories(dir / "configs");
  for (const topology::Router& r : net.routers()) {
    std::ofstream cfg(dir / "configs" / (r.name + ".cfg"));
    cfg << topology::render_config(net, r.id);
  }
  {
    std::ofstream inv(dir / "inventory.txt");
    inv << topology::render_layer1_inventory(net);
  }
  {
    std::ofstream rec(dir / "records.tsv");
    telemetry::write_stream(rec, records);
  }
  if (!truth.empty()) {
    std::ofstream out(dir / "truth.tsv");
    out << "# symptom\trouter\tdetail\ttime\tcause\n";
    for (const TruthEntry& e : truth) {
      out << e.symptom << '\t' << e.router << '\t' << e.detail << '\t'
          << e.time << '\t' << e.cause << '\n';
    }
  }
}

std::vector<TruthEntry> read_truth(const fs::path& dir) {
  std::vector<TruthEntry> truth;
  std::ifstream in(dir / "truth.tsv");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto f = util::split(line, '\t');
    if (f.size() != 5) {
      throw ParseError("truth.tsv: expected 5 tab-separated fields, got " +
                       std::to_string(f.size()));
    }
    truth.push_back(TruthEntry{f[0], f[1], f[2], std::stoll(f[3]), f[4]});
  }
  return truth;
}

ReplayCorpus read_corpus(const fs::path& dir) {
  if (!fs::is_directory(dir / "configs")) {
    throw ConfigError("replay corpus " + dir.string() + ": missing configs/");
  }
  // Directory iteration order is filesystem-dependent; sort the paths so a
  // corpus loads identically everywhere.
  std::vector<fs::path> config_paths;
  for (const auto& entry : fs::directory_iterator(dir / "configs")) {
    config_paths.push_back(entry.path());
  }
  std::sort(config_paths.begin(), config_paths.end());
  std::vector<std::string> configs;
  configs.reserve(config_paths.size());
  for (const fs::path& path : config_paths) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    configs.push_back(ss.str());
  }

  std::ifstream inv(dir / "inventory.txt");
  if (!inv) {
    throw ConfigError("replay corpus " + dir.string() +
                      ": missing inventory.txt");
  }
  std::stringstream ss;
  ss << inv.rdbuf();

  std::ifstream rec(dir / "records.tsv");
  if (!rec) {
    throw ConfigError("replay corpus " + dir.string() +
                      ": missing records.tsv");
  }

  return ReplayCorpus{
      topology::build_network_from_configs(configs, ss.str()),
      telemetry::read_stream(rec), read_truth(dir)};
}

}  // namespace grca::sim
