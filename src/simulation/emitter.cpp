// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "simulation/emitter.h"

#include <cctype>

namespace grca::sim {
namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

using telemetry::RawRecord;
using telemetry::SourceType;

void TelemetryEmitter::syslog(topology::RouterId router, util::TimeSec utc,
                              std::string body) {
  RawRecord r;
  r.source = SourceType::kSyslog;
  r.device = upper(net_.router(router).name);
  r.timestamp = router_zone(router).from_utc(utc);  // local wall-clock
  r.body = std::move(body);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::snmp_router(topology::RouterId router,
                                   util::TimeSec interval_end_utc,
                                   std::string object, double value) {
  RawRecord r;
  r.source = SourceType::kSnmp;
  r.device = net_.router(router).name + ".net.example";
  r.timestamp = interval_end_utc;
  r.field = std::move(object);
  r.value = value;
  r.true_utc = interval_end_utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::snmp_interface(topology::InterfaceId iface,
                                      util::TimeSec interval_end_utc,
                                      std::string object, double value) {
  const topology::Interface& ifc = net_.interface(iface);
  RawRecord r;
  r.source = SourceType::kSnmp;
  r.device = net_.router(ifc.router).name + ".net.example";
  r.timestamp = interval_end_utc;
  r.field = std::move(object);
  r.value = value;
  r.attrs["interface"] = ifc.name;
  r.true_utc = interval_end_utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::layer1(topology::Layer1DeviceId device,
                              util::TimeSec utc, std::string body) {
  const topology::Layer1Device& dev = net_.layer1_device(device);
  RawRecord r;
  r.source = SourceType::kLayer1Log;
  r.device = dev.name;
  r.timestamp = net_.pop(dev.pop).timezone.from_utc(utc);  // local wall-clock
  r.body = std::move(body);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::tacacs(topology::RouterId router, util::TimeSec utc,
                              std::string user, std::string command) {
  RawRecord r;
  r.source = SourceType::kTacacs;
  r.device = net_.router(router).name;
  r.timestamp = utc;
  r.attrs["user"] = std::move(user);
  r.body = std::move(command);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::ospfmon(topology::LogicalLinkId link, util::TimeSec utc,
                               int new_metric) {
  const topology::LogicalLink& l = net_.link(link);
  const topology::Interface& a = net_.interface(l.side_a);
  RawRecord r;
  r.source = SourceType::kOspfMon;
  r.timestamp = utc;
  r.attrs["router"] = net_.router(a.router).name;
  r.attrs["interface"] = a.name;
  r.value = new_metric;
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::bgpmon(const routing::BgpRoute& route, util::TimeSec utc,
                              bool announce) {
  RawRecord r;
  r.source = SourceType::kBgpMon;
  r.timestamp = utc;
  r.body = announce ? "announce" : "withdraw";
  r.attrs["prefix"] = route.prefix.to_string();
  r.attrs["egress"] = net_.router(route.egress).name;
  r.attrs["nexthop"] = route.next_hop.to_string();
  r.attrs["localpref"] = std::to_string(route.local_pref);
  r.attrs["aspathlen"] = std::to_string(route.as_path_len);
  r.attrs["med"] = std::to_string(route.med);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::perf(topology::PopId ingress, topology::PopId egress,
                            util::TimeSec utc, std::string metric,
                            double value) {
  RawRecord r;
  r.source = SourceType::kPerfMon;
  r.timestamp = utc;
  r.field = std::move(metric);
  r.value = value;
  r.attrs["ingress"] = net_.pop(ingress).name;
  r.attrs["egress"] = net_.pop(egress).name;
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::cdn(topology::CdnNodeId node, util::Ipv4Addr client,
                           util::TimeSec utc, std::string metric,
                           double value) {
  RawRecord r;
  r.source = SourceType::kCdnMon;
  r.timestamp = utc;
  r.field = std::move(metric);
  r.value = value;
  r.attrs["node"] = net_.cdn_node(node).name;
  r.attrs["client"] = client.to_string();
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::server_load(topology::CdnNodeId node, int server,
                                   util::TimeSec utc, double load) {
  RawRecord r;
  r.source = SourceType::kServerLog;
  r.timestamp = utc;
  r.field = "load";
  r.value = load;
  r.attrs["node"] = net_.cdn_node(node).name;
  r.attrs["server"] = std::to_string(server);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::cdn_policy(topology::CdnNodeId node, util::TimeSec utc) {
  RawRecord r;
  r.source = SourceType::kServerLog;
  r.timestamp = utc;
  r.field = "policy-change";
  r.value = 1.0;
  r.attrs["node"] = net_.cdn_node(node).name;
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

void TelemetryEmitter::workflow(topology::RouterId router, util::TimeSec utc,
                                std::string activity) {
  RawRecord r;
  r.source = SourceType::kWorkflowLog;
  r.device = net_.router(router).name;
  r.timestamp = utc;
  r.field = std::move(activity);
  r.true_utc = utc;
  stream_.push_back(std::move(r));
}

}  // namespace grca::sim
