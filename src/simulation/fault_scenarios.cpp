// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "simulation/fault_scenarios.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace grca::sim {

namespace t = topology;
using util::TimeSec;

namespace {

TimeSec default_start(TimeSec start) {
  return start != 0 ? start : util::make_utc(2010, 1, 1);
}

std::vector<t::RouterId> provider_edges(const t::Network& net) {
  std::vector<t::RouterId> out;
  for (const t::Router& r : net.routers()) {
    if (r.role == t::RouterRole::kProviderEdge) out.push_back(r.id);
  }
  return out;
}

/// PERs of each PoP, indexed by PopId value.
std::vector<std::vector<t::RouterId>> pers_by_pop(const t::Network& net) {
  std::vector<std::vector<t::RouterId>> out(net.pops().size());
  for (const t::Router& r : net.routers()) {
    if (r.role == t::RouterRole::kProviderEdge) {
      out[r.pop.value()].push_back(r.id);
    }
  }
  return out;
}

/// Lexicographically smallest core router of a PoP, or invalid if none.
t::RouterId core_of_pop(const t::Network& net, t::PopId pop) {
  const t::Router* best = nullptr;
  for (const t::Router& r : net.routers()) {
    if (r.pop != pop || r.role != t::RouterRole::kCore) continue;
    if (best == nullptr || r.name < best->name) best = &r;
  }
  return best != nullptr ? best->id : t::RouterId();
}

std::size_t count_symptoms(const std::vector<TruthEntry>& truth,
                           std::string_view symptom) {
  return static_cast<std::size_t>(
      std::count_if(truth.begin(), truth.end(), [&](const TruthEntry& e) {
        return e.symptom == symptom;
      }));
}

/// Background noise shared by every class (mirrors the study workloads).
void add_noise(ScenarioEngine& eng, const t::Network& net, TimeSec start,
               TimeSec end, double noise, util::Rng& rng) {
  if (noise <= 0.0) return;
  int days = static_cast<int>((end - start) / util::kDay);
  int benign_cpu = static_cast<int>(2 * days * noise);
  int benign_workflow = static_cast<int>(3 * days * noise);
  for (int i = 0; i < benign_cpu; ++i) {
    t::RouterId r(static_cast<std::uint32_t>(rng.below(net.routers().size())));
    eng.noise_cpu_spike(r, start + rng.range(0, end - start));
  }
  for (int i = 0; i < benign_workflow; ++i) {
    t::RouterId r(static_cast<std::uint32_t>(rng.below(net.routers().size())));
    eng.noise_workflow(r, start + rng.range(0, end - start), "provisioning");
  }
  eng.background_snmp(start, end, 0.01 * noise);
}

struct Scaffold {
  TimeSec start, end;
  routing::OspfSim ospf;
  routing::BgpSim bgp;
  ScenarioEngine eng;

  Scaffold(const t::Network& net, const ScenarioParams& p)
      : start(default_start(p.start)),
        end(start + p.days * util::kDay),
        ospf(net),
        bgp(ospf),
        eng(net, ospf, bgp, p.seed) {
    routing::seed_customer_routes(bgp, net, start - util::kDay);
  }

  StudyOutput finish(const t::Network& net, const ScenarioParams& p) {
    add_noise(eng, net, start, end, p.noise, eng.rng());
    StudyOutput out;
    out.truth = eng.truth();
    out.records = eng.take_records();
    return out;
  }
};

// ---- maintenance-window symptom storms --------------------------------------

StudyOutput run_maintenance_storm(const t::Network& net,
                                  const ScenarioParams& p) {
  Scaffold s(net, p);
  util::Rng& rng = s.eng.rng();
  auto pop_pers = pers_by_pop(net);
  std::vector<t::PopId> pops_with_pers;
  for (const t::Pop& pop : net.pops()) {
    if (!pop_pers[pop.id.value()].empty()) pops_with_pers.push_back(pop.id);
  }
  if (pops_with_pers.empty()) {
    throw ConfigError("maintenance-storm: network has no provider edges");
  }

  // Three maintenance windows per night (slots at +1h/+4h/+7h local), each
  // visiting the next PoP in rotation: core costed out, provisioning churn
  // on a PER (the §IV-B bug: sessions HTE out), occasionally a PER reboot,
  // a burst of customer flaps as tails are re-homed, core costed back in.
  const std::size_t target = static_cast<std::size_t>(p.target_symptoms);
  int window = 0;
  const int max_windows = p.days * 3;
  while (count_symptoms(s.eng.truth(), "ebgp-flap") < target &&
         window < max_windows) {
    int night = window / 3, slot = window % 3;
    t::PopId pop = pops_with_pers[window % pops_with_pers.size()];
    TimeSec w = s.start + night * util::kDay + (1 + 3 * slot) * util::kHour +
                rng.range(0, 1800);
    t::RouterId core = core_of_pop(net, pop);
    const std::vector<t::RouterId>& pers = pop_pers[pop.value()];
    if (core.valid()) {
      s.eng.cost_out_router(core, w);
    }
    t::RouterId per = pers[rng.below(pers.size())];
    s.eng.provisioning(per, w + rng.range(60, 600), /*causes_flaps=*/true);
    if (rng.chance(0.35)) {
      s.eng.router_reboot(pers[rng.below(pers.size())],
                          w + rng.range(600, 1800));
    }
    // Tails re-homed during the window flap one by one.
    std::vector<t::CustomerSiteId> sites;
    for (const t::CustomerSite& site : net.customers()) {
      if (net.router(net.interface(site.attachment).router).pop == pop) {
        sites.push_back(site.id);
      }
    }
    int burst = 2 + static_cast<int>(rng.range(0, 4));
    for (int i = 0; i < burst && !sites.empty(); ++i) {
      s.eng.customer_interface_flap(sites[rng.below(sites.size())],
                                    w + rng.range(1800, 9000));
    }
    if (core.valid()) {
      s.eng.cost_in_router(core, w + rng.range(2, 4) * util::kHour +
                                     rng.range(0, 600));
    }
    ++window;
  }
  return s.finish(net, p);
}

// ---- correlated SRLG optical cuts -------------------------------------------

StudyOutput run_srlg_cut(const t::Network& net, const ScenarioParams& p) {
  Scaffold s(net, p);
  util::Rng& rng = s.eng.rng();

  // Devices worth cutting: transport devices feeding >= 2 access circuits,
  // so one fault produces a correlated flap group.
  std::vector<std::size_t> tails(net.layer1_devices().size(), 0);
  for (const t::PhysicalLink& pl : net.physical_links()) {
    if (!pl.access_port.valid()) continue;
    for (t::Layer1DeviceId dev : pl.path) ++tails[dev.value()];
  }
  std::vector<t::Layer1DeviceId> srlgs;
  for (const t::Layer1Device& dev : net.layer1_devices()) {
    if (tails[dev.id.value()] >= 2) srlgs.push_back(dev.id);
  }
  if (srlgs.empty()) {
    throw ConfigError("srlg-cut: no transport device feeds >= 2 circuits");
  }

  const std::size_t target = static_cast<std::size_t>(p.target_symptoms);
  TimeSec cursor = s.start + rng.range(0, util::kHour);
  std::size_t i = 0;
  while (count_symptoms(s.eng.truth(), "ebgp-flap") < target &&
         cursor + util::kHour < s.end) {
    s.eng.srlg_optical_cut(srlgs[i++ % srlgs.size()], cursor);
    // Cuts spaced >= 1h apart keep every tail's BGP episode history ordered.
    cursor += util::kHour + rng.range(0, 2 * util::kHour);
  }
  return s.finish(net, p);
}

// ---- BGP route leaks --------------------------------------------------------

StudyOutput run_route_leak(const t::Network& net, const ScenarioParams& p) {
  Scaffold s(net, p);
  util::Rng& rng = s.eng.rng();
  if (net.customers().empty()) {
    throw ConfigError("route-leak: network has no customer sites");
  }

  // ~80% route leaks, ~20% ordinary administrative resets: the resets keep
  // precision honest (a prefix-flood verdict on them would be wrong).
  int leaks = std::max(1, p.target_symptoms * 8 / 10);
  int resets = std::max(1, p.target_symptoms - leaks);
  struct Ev {
    TimeSec time;
    bool leak;
  };
  std::vector<Ev> schedule;
  for (int i = 0; i < leaks; ++i) {
    schedule.push_back(
        Ev{s.start + rng.range(0, s.end - s.start - util::kHour), true});
  }
  for (int i = 0; i < resets; ++i) {
    schedule.push_back(
        Ev{s.start + rng.range(0, s.end - s.start - util::kHour), false});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Ev& a, const Ev& b) { return a.time < b.time; });

  // Gap-aware site picking so per-prefix BGP histories stay ordered.
  std::vector<TimeSec> last_use(net.customers().size(),
                                std::numeric_limits<TimeSec>::min());
  auto pick_site = [&](TimeSec time) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      t::CustomerSiteId site(
          static_cast<std::uint32_t>(rng.below(net.customers().size())));
      TimeSec last = last_use[site.value()];
      if (last == std::numeric_limits<TimeSec>::min() || time - last >= 900) {
        last_use[site.value()] = time;
        return site;
      }
    }
    t::CustomerSiteId site(
        static_cast<std::uint32_t>(rng.below(net.customers().size())));
    last_use[site.value()] = time;
    return site;
  };

  for (const Ev& ev : schedule) {
    t::CustomerSiteId site = pick_site(ev.time);
    if (ev.leak) {
      s.eng.bgp_route_leak(site, ev.time,
                           20 + static_cast<int>(rng.range(0, 40)));
    } else {
      s.eng.customer_reset(site, ev.time);
    }
  }
  return s.finish(net, p);
}

// ---- gray failures ----------------------------------------------------------

StudyOutput run_gray_failure(const t::Network& net, const ScenarioParams& p) {
  Scaffold s(net, p);
  util::Rng& rng = s.eng.rng();

  // Core-to-core backbone links only: the probe mesh runs between PoP cores.
  std::vector<t::LogicalLinkId> backbone;
  for (const t::LogicalLink& l : net.links()) {
    t::RouterId ra = net.interface(l.side_a).router;
    t::RouterId rb = net.interface(l.side_b).router;
    if (net.router(ra).role == t::RouterRole::kCore &&
        net.router(rb).role == t::RouterRole::kCore) {
      backbone.push_back(l.id);
    }
  }
  if (backbone.empty()) {
    throw ConfigError("gray-failure: network has no core-core links");
  }

  auto random_pop_pair = [&] {
    std::size_t a = rng.below(net.pops().size());
    std::size_t b = a;
    while (b == a) b = rng.below(net.pops().size());
    return std::make_pair(net.pops()[a].id, net.pops()[b].id);
  };

  const std::size_t target = static_cast<std::size_t>(p.target_symptoms);
  int attempts = 0;
  const int max_attempts = p.target_symptoms * 10 + 100;
  while (count_symptoms(s.eng.truth(), "innet-loss-increase") < target &&
         attempts++ < max_attempts) {
    t::LogicalLinkId link = backbone[rng.below(backbone.size())];
    TimeSec at = s.start + rng.range(0, s.end - s.start - 4 * util::kHour);
    TimeSec dur = rng.range(1, 3) * util::kHour;
    // Probe set: the link's own endpoint PoPs (their shortest path crosses
    // the link in every non-degenerate weighting) plus a spread of others.
    const t::LogicalLink& l = net.link(link);
    std::vector<std::pair<t::PopId, t::PopId>> probes;
    probes.emplace_back(net.router(net.interface(l.side_a).router).pop,
                        net.router(net.interface(l.side_b).router).pop);
    for (int i = 0; i < 12 && net.pops().size() >= 2; ++i) {
      auto pair = random_pop_pair();
      if (std::find(probes.begin(), probes.end(), pair) == probes.end()) {
        probes.push_back(pair);
      }
    }
    s.eng.gray_failure(link, at, dur, probes);
  }

  // Benign probe readings so thresholding is exercised.
  if (p.noise > 0 && net.pops().size() >= 2) {
    for (int i = 0; i < p.days * 20; ++i) {
      auto [a, b] = random_pop_pair();
      s.eng.emitter().perf(a, b, s.start + rng.range(0, s.end - s.start),
                           "loss", rng.uniform(0.0, 0.4));
      s.eng.emitter().perf(a, b, s.start + rng.range(0, s.end - s.start),
                           "delay", rng.uniform(5.0, 35.0));
    }
  }
  return s.finish(net, p);
}

// ---- CDN / overlay symptom floods -------------------------------------------

StudyOutput run_cdn_flood(const t::Network& net, const ScenarioParams& p) {
  if (net.cdn_nodes().empty()) {
    throw ConfigError("cdn-flood: network has no CDN nodes");
  }
  Scaffold s(net, p);
  util::Rng& rng = s.eng.rng();
  t::CdnNodeId node = net.cdn_nodes().front().id;
  std::vector<t::RouterId> pers = provider_edges(net);
  if (pers.empty()) {
    throw ConfigError("cdn-flood: network has no provider edges");
  }

  StudyOutput out;
  std::uint32_t base = util::Ipv4Addr::parse("203.0.0.0").value();
  const int n_prefixes = 24;
  for (int i = 0; i < n_prefixes; ++i) {
    util::Ipv4Prefix prefix(util::Ipv4Addr(base + 256u * i), 24);
    t::RouterId primary = pers[rng.below(pers.size())];
    t::RouterId backup = primary;
    for (int tries = 0;
         tries < 16 && net.router(backup).pop == net.router(primary).pop;
         ++tries) {
      backup = pers[rng.below(pers.size())];
    }
    s.eng.add_client_prefix(prefix, {primary, backup},
                            s.start - util::kDay);
    out.client_prefixes.push_back(prefix);
  }
  auto random_client = [&] {
    util::Ipv4Prefix prefix =
        out.client_prefixes[rng.below(out.client_prefixes.size())];
    return util::Ipv4Addr(prefix.address().value() +
                          static_cast<std::uint32_t>(rng.range(2, 250)));
  };

  // The flood: mass policy changes and server overloads (large client
  // batches), with single-client path events and outside noise sprinkled in
  // so the flood classes are diagnosed against real alternatives.
  const std::size_t target = static_cast<std::size_t>(p.target_symptoms);
  int attempts = 0;
  const int max_attempts = p.target_symptoms * 10 + 100;
  while (count_symptoms(s.eng.truth(), "cdn-rtt-increase") < target &&
         attempts++ < max_attempts) {
    TimeSec at = s.start + rng.range(0, s.end - s.start - util::kHour);
    double roll = rng.uniform();
    try {
      if (roll < 0.40) {
        std::vector<util::Ipv4Addr> clients;
        for (int i = 0; i < 15; ++i) clients.push_back(random_client());
        s.eng.cdn_policy_change(node, clients, at);
      } else if (roll < 0.80) {
        std::vector<util::Ipv4Addr> clients;
        for (int i = 0; i < 10; ++i) clients.push_back(random_client());
        s.eng.cdn_server_overload(node, clients, at);
      } else if (roll < 0.88) {
        s.eng.cdn_path_congestion(node, random_client(), at);
      } else if (roll < 0.94) {
        s.eng.cdn_path_loss(node, random_client(), at);
      } else {
        s.eng.cdn_outside(node, random_client(), at);
      }
    } catch (const ConfigError&) {
      // Routing-history collision: skip the incident.
    }
  }
  StudyOutput done = s.finish(net, p);
  done.client_prefixes = std::move(out.client_prefixes);
  return done;
}

}  // namespace

// ---- public API -------------------------------------------------------------

std::vector<ScenarioClass> all_scenario_classes() {
  return {ScenarioClass::kMaintenanceStorm, ScenarioClass::kSrlgCut,
          ScenarioClass::kRouteLeak, ScenarioClass::kGrayFailure,
          ScenarioClass::kCdnFlood};
}

const char* to_string(ScenarioClass c) {
  switch (c) {
    case ScenarioClass::kMaintenanceStorm: return "maintenance-storm";
    case ScenarioClass::kSrlgCut: return "srlg-cut";
    case ScenarioClass::kRouteLeak: return "route-leak";
    case ScenarioClass::kGrayFailure: return "gray-failure";
    case ScenarioClass::kCdnFlood: return "cdn-flood";
  }
  return "unknown";
}

ScenarioClass parse_scenario_class(std::string_view name) {
  for (ScenarioClass c : all_scenario_classes()) {
    if (name == to_string(c)) return c;
  }
  throw ParseError("unknown scenario class: " + std::string(name));
}

const char* scenario_app(ScenarioClass c) {
  switch (c) {
    case ScenarioClass::kMaintenanceStorm:
    case ScenarioClass::kSrlgCut:
    case ScenarioClass::kRouteLeak:
      return "bgp";
    case ScenarioClass::kGrayFailure:
      return "innet";
    case ScenarioClass::kCdnFlood:
      return "cdn";
  }
  return "bgp";
}

StudyOutput run_scenario(ScenarioClass c, const topology::Network& net,
                         const ScenarioParams& params) {
  switch (c) {
    case ScenarioClass::kMaintenanceStorm:
      return run_maintenance_storm(net, params);
    case ScenarioClass::kSrlgCut:
      return run_srlg_cut(net, params);
    case ScenarioClass::kRouteLeak:
      return run_route_leak(net, params);
    case ScenarioClass::kGrayFailure:
      return run_gray_failure(net, params);
    case ScenarioClass::kCdnFlood:
      return run_cdn_flood(net, params);
  }
  throw ConfigError("run_scenario: unknown scenario class");
}

}  // namespace grca::sim
