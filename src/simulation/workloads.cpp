// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "simulation/workloads.h"

#include <algorithm>

namespace grca::sim {

namespace t = topology;
using util::TimeSec;

namespace {

TimeSec default_start(TimeSec start) {
  return start != 0 ? start : util::make_utc(2010, 1, 1);
}

/// One scheduled incident of a study.
struct Incident {
  TimeSec time;
  int kind;
};

/// Expands per-kind incident counts into a time-sorted schedule.
std::vector<Incident> make_schedule(const std::vector<int>& counts,
                                    TimeSec start, TimeSec end,
                                    util::Rng& rng) {
  std::vector<Incident> schedule;
  for (std::size_t kind = 0; kind < counts.size(); ++kind) {
    for (int i = 0; i < counts[kind]; ++i) {
      schedule.push_back(Incident{
          start + rng.range(0, end - start - util::kHour),
          static_cast<int>(kind)});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Incident& a, const Incident& b) { return a.time < b.time; });
  return schedule;
}

std::vector<t::RouterId> provider_edges(const t::Network& net) {
  std::vector<t::RouterId> out;
  for (const t::Router& r : net.routers()) {
    if (r.role == t::RouterRole::kProviderEdge) out.push_back(r.id);
  }
  return out;
}

/// Picks a site whose previous use is at least `gap` seconds ago, so BGP
/// episode histories stay well-ordered per prefix.
class SitePicker {
 public:
  SitePicker(const t::Network& net, util::Rng& rng) : net_(net), rng_(rng) {
    last_use_.assign(net.customers().size(), std::numeric_limits<TimeSec>::min());
  }

  t::CustomerSiteId pick(TimeSec time, TimeSec gap = 600) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      t::CustomerSiteId site(
          static_cast<std::uint32_t>(rng_.below(net_.customers().size())));
      const TimeSec last = last_use_[site.value()];
      // The min() sentinel marks a never-used site; `time - last` would
      // overflow for it, so test it before forming the difference.
      if (last == std::numeric_limits<TimeSec>::min() || time - last >= gap) {
        last_use_[site.value()] = time;
        return site;
      }
    }
    // Dense schedule: accept a reuse rather than loop forever.
    t::CustomerSiteId site(
        static_cast<std::uint32_t>(rng_.below(net_.customers().size())));
    last_use_[site.value()] = time;
    return site;
  }

 private:
  const t::Network& net_;
  util::Rng& rng_;
  std::vector<TimeSec> last_use_;
};

/// Background noise common to all studies.
void add_noise(ScenarioEngine& eng, const t::Network& net, TimeSec start,
               TimeSec end, double noise, util::Rng& rng) {
  if (noise <= 0.0) return;
  int days = static_cast<int>((end - start) / util::kDay);
  int benign_cpu = static_cast<int>(2 * days * noise);
  int benign_workflow = static_cast<int>(3 * days * noise);
  for (int i = 0; i < benign_cpu; ++i) {
    t::RouterId r(static_cast<std::uint32_t>(rng.below(net.routers().size())));
    eng.noise_cpu_spike(r, start + rng.range(0, end - start));
  }
  for (int i = 0; i < benign_workflow; ++i) {
    t::RouterId r(static_cast<std::uint32_t>(rng.below(net.routers().size())));
    eng.noise_workflow(r, start + rng.range(0, end - start), "provisioning");
  }
  eng.background_snmp(start, end, 0.01 * noise);
}

}  // namespace

// ---- BGP study ---------------------------------------------------------------

StudyOutput run_bgp_study(const t::Network& net, const BgpStudyParams& p) {
  TimeSec start = default_start(p.start);
  TimeSec end = start + p.days * util::kDay;
  routing::OspfSim ospf(net);
  routing::BgpSim bgp(ospf);
  routing::seed_customer_routes(bgp, net, start - util::kDay);
  ScenarioEngine eng(net, ospf, bgp, p.seed);
  util::Rng& rng = eng.rng();
  SitePicker sites(net, rng);
  std::vector<t::RouterId> pers = provider_edges(net);

  // Access circuits by layer-1 kind, for the restoration rows.
  std::vector<t::PhysicalLinkId> sonet_tails, optical_tails;
  for (const t::PhysicalLink& pl : net.physical_links()) {
    if (!pl.access_port.valid()) continue;
    (pl.kind == t::Layer1Kind::kSonetRing ? sonet_tails : optical_tails)
        .push_back(pl.id);
  }

  // Table IV symptom shares. Kinds: 0 iface flap, 1 line-proto flap,
  // 2 cpu spike, 3 cpu avg, 4 customer reset, 5 router reboot, 6 HTE
  // unknown, 7 silent (Unknown), 8 SONET, 9 optical fast, 10 optical reg.
  const double share[11] = {63.94, 11.15, 6.44, 0.02, 1.84, 0.33,
                            4.86,  10.95, 0.29, 0.14, 0.04};
  std::vector<int> counts(11);
  int sessions_per_per =
      pers.empty() ? 1
                   : std::max<int>(1, static_cast<int>(net.customers().size() /
                                                       pers.size()));
  for (int k = 0; k < 11; ++k) {
    double n = p.target_symptoms * share[k] / 100.0;
    if (k == 5) n /= sessions_per_per;  // a reboot flaps every session
    counts[k] = std::max(share[k] > 0 ? 1 : 0, static_cast<int>(n + 0.5));
  }

  for (const Incident& inc : make_schedule(counts, start, end, rng)) {
    switch (inc.kind) {
      case 0: eng.customer_interface_flap(sites.pick(inc.time), inc.time); break;
      case 1: eng.line_protocol_flap(sites.pick(inc.time), inc.time); break;
      case 2:
        eng.cpu_spike(pers[rng.below(pers.size())], inc.time, 1);
        break;
      case 3:
        eng.cpu_high_avg(pers[rng.below(pers.size())], inc.time, 1);
        break;
      case 4: eng.customer_reset(sites.pick(inc.time), inc.time); break;
      case 5: eng.router_reboot(pers[rng.below(pers.size())], inc.time); break;
      case 6: eng.hte_unknown(sites.pick(inc.time), inc.time); break;
      case 7: eng.silent_flap(sites.pick(inc.time), inc.time); break;
      case 8:
        if (!sonet_tails.empty()) {
          eng.access_layer1_restoration(
              sonet_tails[rng.below(sonet_tails.size())], inc.time,
              RestorationKind::kSonet);
        }
        break;
      case 9:
      case 10:
        if (!optical_tails.empty()) {
          eng.access_layer1_restoration(
              optical_tails[rng.below(optical_tails.size())], inc.time,
              inc.kind == 9 ? RestorationKind::kOpticalFast
                            : RestorationKind::kOpticalRegular);
        }
        break;
      default: break;
    }
  }

  add_noise(eng, net, start, end, p.noise, rng);
  StudyOutput out;
  out.truth = eng.truth();
  out.records = eng.take_records();
  return out;
}

// ---- CDN study -----------------------------------------------------------------

StudyOutput run_cdn_study(const t::Network& net, const CdnStudyParams& p) {
  if (net.cdn_nodes().empty()) {
    throw ConfigError("run_cdn_study: network has no CDN nodes");
  }
  TimeSec start = default_start(p.start);
  TimeSec end = start + p.days * util::kDay;
  routing::OspfSim ospf(net);
  routing::BgpSim bgp(ospf);
  routing::seed_customer_routes(bgp, net, start - util::kDay);
  ScenarioEngine eng(net, ospf, bgp, p.seed);
  util::Rng& rng = eng.rng();
  t::CdnNodeId node = net.cdn_nodes().front().id;
  std::vector<t::RouterId> pers = provider_edges(net);

  // External client populations, each reachable via a primary and a backup
  // egress PER in different PoPs.
  StudyOutput out;
  std::uint32_t base = util::Ipv4Addr::parse("203.0.0.0").value();
  for (int i = 0; i < p.client_prefixes; ++i) {
    util::Ipv4Prefix prefix(util::Ipv4Addr(base + 256u * i), 24);
    t::RouterId primary = pers[rng.below(pers.size())];
    t::RouterId backup = primary;
    for (int tries = 0; tries < 16 && net.router(backup).pop ==
                                          net.router(primary).pop; ++tries) {
      backup = pers[rng.below(pers.size())];
    }
    eng.add_client_prefix(prefix, {primary, backup}, start - util::kDay);
    out.client_prefixes.push_back(prefix);
  }
  auto random_client = [&](util::Ipv4Prefix prefix) {
    return util::Ipv4Addr(prefix.address().value() +
                          static_cast<std::uint32_t>(rng.range(2, 250)));
  };

  // Table VI shares. Kinds: 0 policy change, 1 egress change, 2 congestion,
  // 3 loss, 4 interface flap, 5 re-convergence, 6 outside.
  const double share[7] = {3.83, 5.71, 3.50, 3.32, 4.65, 4.16, 74.83};
  const int policy_batch = 5;  // clients impacted per policy change
  std::vector<int> counts(7);
  for (int k = 0; k < 7; ++k) {
    double n = p.target_symptoms * share[k] / 100.0;
    if (k == 0) n /= policy_batch;
    counts[k] = std::max(1, static_cast<int>(n + 0.5));
  }

  for (const Incident& inc : make_schedule(counts, start, end, rng)) {
    util::Ipv4Prefix prefix =
        out.client_prefixes[rng.below(out.client_prefixes.size())];
    util::Ipv4Addr client = random_client(prefix);
    try {
      switch (inc.kind) {
        case 0: {
          std::vector<util::Ipv4Addr> clients;
          for (int i = 0; i < policy_batch; ++i) {
            clients.push_back(random_client(
                out.client_prefixes[rng.below(out.client_prefixes.size())]));
          }
          eng.cdn_policy_change(node, clients, inc.time);
          break;
        }
        case 1: eng.cdn_egress_change(node, client, prefix, inc.time); break;
        case 2: eng.cdn_path_congestion(node, client, inc.time); break;
        case 3: eng.cdn_path_loss(node, client, inc.time); break;
        case 4: eng.cdn_path_interface_flap(node, client, inc.time); break;
        case 5: eng.cdn_path_reconvergence(node, client, inc.time); break;
        case 6: eng.cdn_outside(node, client, inc.time); break;
        default: break;
      }
    } catch (const ConfigError&) {
      // A routing-history collision (same link touched twice, out of order):
      // skip the incident; the mixture stays approximately calibrated.
    }
  }

  add_noise(eng, net, start, end, p.noise, rng);
  out.truth = eng.truth();
  out.records = eng.take_records();
  return out;
}

// ---- In-network probe-loss study ---------------------------------------------

StudyOutput run_innet_study(const t::Network& net,
                            const InnetStudyParams& p) {
  TimeSec start = default_start(p.start);
  TimeSec end = start + p.days * util::kDay;
  routing::OspfSim ospf(net);
  routing::BgpSim bgp(ospf);
  routing::seed_customer_routes(bgp, net, start - util::kDay);
  ScenarioEngine eng(net, ospf, bgp, p.seed);
  util::Rng& rng = eng.rng();

  // Kinds: 0 congestion, 1 re-convergence, 2 flap, 3 unknown.
  const double share[4] = {p.congestion_pct, p.reconvergence_pct, p.flap_pct,
                           p.unknown_pct};
  std::vector<int> counts(4);
  for (int k = 0; k < 4; ++k) {
    counts[k] = std::max(1, static_cast<int>(p.target_symptoms * share[k] /
                                                 100.0 +
                                             0.5));
  }
  auto random_pop_pair = [&] {
    std::size_t a = rng.below(net.pops().size());
    std::size_t b = a;
    while (b == a) b = rng.below(net.pops().size());
    return std::make_pair(net.pops()[a].id, net.pops()[b].id);
  };
  for (const Incident& inc : make_schedule(counts, start, end, rng)) {
    auto [a, b] = random_pop_pair();
    try {
      switch (inc.kind) {
        case 0: eng.innet_loss_congestion(a, b, inc.time); break;
        case 1: eng.innet_loss_reconvergence(a, b, inc.time); break;
        case 2: eng.innet_loss_flap(a, b, inc.time); break;
        case 3: eng.innet_loss_unknown(a, b, inc.time); break;
        default: break;
      }
    } catch (const ConfigError&) {
      // Routing-history collision: skip.
    }
  }
  // Benign probe readings so thresholding is exercised.
  if (p.noise > 0) {
    for (int i = 0; i < p.days * 20; ++i) {
      auto [a, b] = random_pop_pair();
      eng.emitter().perf(a, b, start + rng.range(0, end - start), "loss",
                         rng.uniform(0.0, 0.4));
      eng.emitter().perf(a, b, start + rng.range(0, end - start), "delay",
                         rng.uniform(5.0, 35.0));
    }
  }
  add_noise(eng, net, start, end, p.noise, rng);
  StudyOutput out;
  out.truth = eng.truth();
  out.records = eng.take_records();
  return out;
}

// ---- PIM study -----------------------------------------------------------------

StudyOutput run_pim_study(const t::Network& net, const PimStudyParams& p) {
  TimeSec start = default_start(p.start);
  TimeSec end = start + p.days * util::kDay;
  routing::OspfSim ospf(net);
  routing::BgpSim bgp(ospf);
  routing::seed_customer_routes(bgp, net, start - util::kDay);
  ScenarioEngine eng(net, ospf, bgp, p.seed);
  util::Rng& rng = eng.rng();

  // MVPNs and their PE sets.
  std::vector<std::string> vpns;
  for (const t::CustomerSite& c : net.customers()) {
    if (!c.mvpn.empty() &&
        std::find(vpns.begin(), vpns.end(), c.mvpn) == vpns.end()) {
      vpns.push_back(c.mvpn);
    }
  }
  if (vpns.empty()) throw ConfigError("run_pim_study: network has no MVPNs");
  auto pes_of = [&](const std::string& vpn) {
    std::vector<t::RouterId> out;
    for (t::CustomerSiteId s : net.mvpn_sites(vpn)) {
      t::RouterId pe = net.interface(net.customer(s).attachment).router;
      if (std::find(out.begin(), out.end(), pe) == out.end()) out.push_back(pe);
    }
    return out;
  };
  // MVPN customer sites (for the flap and config-change kinds).
  std::vector<t::CustomerSiteId> mvpn_sites;
  for (const t::CustomerSite& c : net.customers()) {
    if (!c.mvpn.empty()) mvpn_sites.push_back(c.id);
  }

  // Table VIII shares. Kinds: 0 customer-facing flap, 1 router cost in/out,
  // 2 OSPF re-convergence, 3 link cost out/down, 4 link cost in/up,
  // 5 PIM config change, 6 uplink adjacency loss, 7 unknown.
  //
  // Incidents yield variable symptom counts (a VPN-wide flap logs adjacency
  // changes at every PE pair; a backbone disturbance touches however many
  // PE pairs cross the link). Rather than guessing expectation factors, the
  // generator is adaptive: it injects incidents of each kind until that
  // kind's ground-truth symptom quota is met, counting the truth entries the
  // engine actually appended.
  const double share[8] = {69.21, 10.34, 10.36, 1.50, 0.84, 4.04, 1.95, 1.76};
  const char* kind_cause[8] = {
      cause::kInterfaceFlap,  cause::kRouterCostInOut,
      cause::kOspfReconvergence, cause::kLinkCostOutDown,
      cause::kLinkCostInUp,   cause::kPimConfigChange,
      cause::kUplinkPimLoss,  cause::kUnknown};

  auto inject = [&](int kind, TimeSec time) {
    const std::string& vpn = vpns[rng.below(vpns.size())];
    auto pes = pes_of(vpn);
    switch (kind) {
      case 0:
        eng.mvpn_customer_flap(mvpn_sites[rng.below(mvpn_sites.size())], time);
        break;
      case 1: {
        // A core router on the path between two PEs of the VPN.
        if (pes.size() < 2) break;
        t::RouterId a = pes[rng.below(pes.size())];
        t::RouterId b = a;
        while (b == a) b = pes[rng.below(pes.size())];
        auto routers = ospf.routers_on_paths(a, b, time);
        std::vector<t::RouterId> interior;
        for (t::RouterId r : routers) {
          if (r != a && r != b && net.router(r).role == t::RouterRole::kCore) {
            interior.push_back(r);
          }
        }
        if (interior.empty()) break;
        eng.pim_router_cost_disturbance(vpn,
                                        interior[rng.below(interior.size())],
                                        time);
        break;
      }
      case 2:
      case 3:
      case 4: {
        if (pes.size() < 2) break;
        t::RouterId a = pes[rng.below(pes.size())];
        t::RouterId b = a;
        while (b == a) b = pes[rng.below(pes.size())];
        auto links = ospf.links_on_paths(a, b, time);
        if (links.empty()) break;
        t::LogicalLinkId link = links[rng.below(links.size())];
        const char* cause = kind == 2 ? cause::kOspfReconvergence
                            : kind == 3 ? cause::kLinkCostOutDown
                                        : cause::kLinkCostInUp;
        eng.pim_path_disturbance(vpn, link, time, cause);
        break;
      }
      case 5:
        eng.pim_config_change(mvpn_sites[rng.below(mvpn_sites.size())], time);
        break;
      case 6:
        eng.uplink_pim_loss(pes[rng.below(pes.size())], time);
        break;
      case 7:
        eng.pim_unknown(vpn, time);
        break;
      default:
        break;
    }
  };

  auto produced_for = [&](const char* cause_name) {
    std::size_t n = 0;
    for (const TruthEntry& e : eng.truth()) {
      n += e.symptom == "pim-adjacency-flap" && e.cause == cause_name;
    }
    return n;
  };
  for (int kind = 0; kind < 8; ++kind) {
    std::size_t quota = static_cast<std::size_t>(
        p.target_symptoms * share[kind] / 100.0 + 0.5);
    if (quota == 0) quota = 1;
    int attempts = 0;
    const int max_attempts = static_cast<int>(quota) * 10 + 100;
    while (produced_for(kind_cause[kind]) < quota &&
           attempts++ < max_attempts) {
      TimeSec time = start + rng.range(0, end - start - util::kHour);
      try {
        inject(kind, time);
      } catch (const ConfigError&) {
        // Routing-history collision (same link touched out of order): retry
        // at a different time.
      }
    }
  }

  add_noise(eng, net, start, end, p.noise, rng);
  StudyOutput out;
  out.truth = eng.truth();
  out.records = eng.take_records();
  return out;
}

}  // namespace grca::sim
