// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/pim_app.h"

#include "core/knowledge_library.h"
#include "core/rule_dsl.h"

namespace grca::apps::pim {

namespace {

constexpr std::string_view kAppDsl = R"DSL(
event pim-adjacency-flap {
  location vpn-neighbor
  source syslog
  retrieval syslog-pim-nbrchg
  desc "a PE lost a neighbor adjacency with another PE in the MVPN"
}
event pim-config-change {
  location router
  source router-command-logs
  retrieval tacacs-mvpn
  desc "a MVPN is either provisioned or de-provisioned on a router"
}
event uplink-pim-adjacency-change {
  location router
  source syslog
  retrieval syslog-pim-uplink
  desc "a PE lost a neighbor adjacency with its directly connected router on its uplink to the backbone"
}

rule pim-adjacency-flap -> pim-config-change {
  priority 200
  symptom start-start 30 10
  diagnostic start-end 5 60
  join router
}
rule pim-adjacency-flap -> uplink-pim-adjacency-change {
  priority 190
  symptom start-start 30 10
  diagnostic start-end 5 60
  join router
}
rule pim-adjacency-flap -> interface-flap {
  priority 180
  symptom start-start 30 10
  diagnostic start-end 5 30
  join router
}
rule pim-adjacency-flap -> router-cost-inout {
  # Above the cmd-cost-out chain (180): when a whole router is costed out,
  # the router-level event subsumes the per-link command evidence.
  priority 185
  symptom start-start 30 10
  diagnostic start-end 5 60
  join router-path
}
rule pim-adjacency-flap -> link-cost-outdown {
  priority 165
  symptom start-start 30 10
  diagnostic start-end 5 60
  join logical-link
}
rule pim-adjacency-flap -> link-cost-inup {
  priority 165
  symptom start-start 30 10
  diagnostic start-end 5 60
  join logical-link
}
rule pim-adjacency-flap -> ospf-reconvergence {
  priority 150
  symptom start-start 30 10
  diagnostic start-end 5 60
  join logical-link
}

graph {
  root pim-adjacency-flap
}
)DSL";

}  // namespace

std::string_view app_dsl() { return kAppDsl; }

core::DiagnosisGraph build_graph() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  core::load_dsl(kAppDsl, graph);
  graph.validate();
  return graph;
}

void configure_browser(core::ResultBrowser& browser) {
  browser.set_display_name("pim-config-change",
                           "PIM Configuration Change (to add and remove customers)");
  browser.set_display_name("router-cost-inout", "Router Cost In/Out");
  browser.set_display_name("link-cost-outdown", "Link Cost Out/Down");
  browser.set_display_name("link-cost-inup", "Link Cost In/Up");
  browser.set_display_name("cmd-cost-out", "Link Cost Out/Down");
  browser.set_display_name("cmd-cost-in", "Link Cost In/Up");
  browser.set_display_name("ospf-reconvergence", "OSPF re-convergence");
  browser.set_display_name("uplink-pim-adjacency-change",
                           "Uplink PIM adjacency loss");
  browser.set_display_name("interface-flap", "interface (customer facing) flap");
  browser.set_display_name("unknown", "Unknown");
  browser.set_display_order({"pim-config-change", "router-cost-inout",
                             "link-cost-outdown", "link-cost-inup",
                             "ospf-reconvergence",
                             "uplink-pim-adjacency-change", "interface-flap",
                             "unknown"});
}

std::string canonical_cause(const std::string& primary) {
  if (primary == "cmd-cost-out") return "link-cost-outdown";
  if (primary == "cmd-cost-in") return "link-cost-inup";
  if (primary == "sonet-restoration" ||
      primary == "optical-restoration-fast" ||
      primary == "optical-restoration-regular" ||
      primary == "line-protocol-flap") {
    return "interface-flap";
  }
  return primary;
}

}  // namespace grca::apps::pim
