// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The MVPN PIM-adjacency RCA application (paper §III-C, Fig. 6, Tables
// VII/VIII): PE-PE PIM neighbor adjacency changes, diagnosed against
// customer-side flaps, MVPN (de)provisioning, PE uplink adjacency losses and
// backbone routing events along the PE-PE path.
#pragma once

#include "core/diagnosis_graph.h"
#include "core/result_browser.h"

namespace grca::apps::pim {

/// Application-specific DSL (Table VII events + Fig. 6 rules).
std::string_view app_dsl();

/// Knowledge Library + application config, rooted at pim-adjacency-flap.
core::DiagnosisGraph build_graph();

/// Table VIII row labels and order.
void configure_browser(core::ResultBrowser& browser);

/// Maps diagnosed primaries onto ground-truth cause labels (cmd-cost events
/// fold into the Link Cost rows, layer-1 causes into the interface row).
std::string canonical_cause(const std::string& primary);

}  // namespace grca::apps::pim
