// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Scoring harness: matches RCA diagnoses against the scenario engine's
// ground-truth labels. The paper could only validate diagnoses anecdotally
// (operator confirmation); the synthetic substrate lets us score every
// verdict, so the benches report accuracy alongside the breakdown tables.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "simulation/scenario.h"
#include "util/table.h"

namespace grca::apps {

struct Score {
  std::size_t truth_total = 0;     // ground-truth symptom entries
  std::size_t diagnosed_total = 0; // diagnoses produced for the symptom
  std::size_t matched = 0;         // diagnoses matched to a truth entry
  std::size_t correct = 0;         // matched with the right root cause
  /// confusion[truth-cause][diagnosed-cause] = count.
  std::map<std::string, std::map<std::string, std::size_t>> confusion;

  double accuracy() const {
    return matched == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(matched);
  }

  /// RCAEval-style scorecard metrics: of everything diagnosed, how much was
  /// right (precision); of all injected truth, how much was found and
  /// correctly explained (recall).
  double precision() const {
    return diagnosed_total == 0 ? 0.0
                                : static_cast<double>(correct) /
                                      static_cast<double>(diagnosed_total);
  }
  double recall() const {
    return truth_total == 0 ? 0.0
                            : static_cast<double>(correct) /
                                  static_cast<double>(truth_total);
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// "truth cause | diagnosed as | count" rows, largest first.
  util::TextTable confusion_table() const;
};

/// Matches each diagnosis to the ground-truth entry with the same symptom
/// name and location (within `tolerance` seconds of the symptom start) and
/// compares `canonical(primary)` with the truth cause. `canonical` maps
/// app-level primaries onto truth labels (identity by default).
Score score_diagnoses(
    const std::vector<core::Diagnosis>& diagnoses,
    const std::vector<sim::TruthEntry>& truth,
    const std::function<std::string(const std::string&)>& canonical = {},
    util::TimeSec tolerance = 30);

/// Scores only the diagnoses (by symptom start) and truth entries (by label
/// time) falling inside [from, to). The learn loop carves its train /
/// held-out split along the time axis with this, so both sides of the split
/// keep consistent truth denominators.
Score score_diagnoses_window(
    const std::vector<core::Diagnosis>& diagnoses,
    const std::vector<sim::TruthEntry>& truth, util::TimeSec from,
    util::TimeSec to,
    const std::function<std::string(const std::string&)>& canonical = {},
    util::TimeSec tolerance = 30);

}  // namespace grca::apps
