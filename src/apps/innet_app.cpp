// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/innet_app.h"

#include "core/knowledge_library.h"
#include "core/rule_dsl.h"

namespace grca::apps::innet {

core::DiagnosisGraph build_graph() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  // Every event and rule comes from the library; the "application" is just
  // the choice of root symptom.
  // One application-specific rule on top: probe loss explained by a gray
  // failure — a link silently corrupting packets (SNMP ifcorrupt) without
  // ever going down. Margins mirror the link-congestion rule: the corrupt
  // counter is read at the end of its 5-minute bin.
  core::load_dsl(R"(
rule innet-loss-increase -> link-loss {
  priority 135
  symptom start-start 330 30
  diagnostic start-end 300 60
  join logical-link
}

graph {
  root innet-loss-increase
}
)",
                 graph);
  graph.validate();
  return graph;
}

void configure_browser(core::ResultBrowser& browser) {
  browser.set_display_name("link-congestion", "Link congestion");
  browser.set_display_name("link-loss", "Link loss (gray failure)");
  browser.set_display_name("ospf-reconvergence", "OSPF re-convergence");
  browser.set_display_name("interface-flap", "Interface flap");
  browser.set_display_name("bgp-egress-change", "BGP egress change");
  browser.set_display_name("cmd-cost-in", "Maintenance (cost-in command)");
  browser.set_display_name("cmd-cost-out", "Maintenance (cost-out command)");
  browser.set_display_name("unknown", "Unknown");
  browser.set_display_order({"link-congestion", "link-loss",
                             "ospf-reconvergence", "interface-flap",
                             "bgp-egress-change", "unknown"});
}

std::string canonical_cause(const std::string& primary) {
  // Deeper explanations of a path change still belong to the
  // re-convergence row for action purposes.
  if (primary == "cmd-cost-in" || primary == "cmd-cost-out" ||
      primary == "line-protocol-flap" || primary == "sonet-restoration" ||
      primary == "optical-restoration-fast" ||
      primary == "optical-restoration-regular") {
    return "ospf-reconvergence";
  }
  return primary;
}

std::string recommend_action(const std::map<std::string, double>& pct) {
  auto share = [&](const char* cause) {
    auto it = pct.find(cause);
    return it == pct.end() ? 0.0 : it->second;
  };
  double congestion = share("link-congestion");
  double reconvergence = share("ospf-reconvergence") +
                         share("interface-flap");
  if (congestion >= reconvergence && congestion > 20.0) {
    return "primary root cause is link congestion: capacity augmentation is "
           "needed along the affected paths";
  }
  if (reconvergence > 20.0) {
    return "losses are largely due to routing re-convergence: prioritize "
           "deploying MPLS fast reroute";
  }
  return "no dominant internal cause: continue trending and investigate the "
         "unexplained residue";
}

}  // namespace grca::apps::innet
