// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The `grca benchmark` driver: runs the full scenario-class x topology
// matrix — each cell a seeded fault corpus generated on an imported real
// topology, diagnosed end-to-end through Pipeline and scored against ground
// truth — and renders one scorecard (precision/recall/F1 per cell, plus
// ingest+diagnosis throughput) in the RCAEval spirit: a fixed fault corpus
// whose accuracy is tracked across PRs via tools/bench_diff.py.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simulation/fault_scenarios.h"
#include "util/table.h"

namespace grca::apps {

struct BenchmarkOptions {
  int days = 3;
  int target_symptoms = 120;   // ground-truth symptoms per cell
  double noise = 1.0;
  std::uint64_t seed = 29;     // mixed with topology+scenario names per cell
  unsigned threads = 0;        // diagnosis fan-out (0 = hardware)
  /// Include wall-clock throughput (records/min) in the scorecard. Disable
  /// for byte-stable output (golden fixtures, cross-machine CI gates).
  bool timing = true;
  /// Scenario classes to run; empty = all of them.
  std::vector<sim::ScenarioClass> scenarios;
};

/// One topology of the matrix (the Network outlives the benchmark run).
struct BenchmarkTopology {
  std::string name;
  const topology::Network* net = nullptr;
};

/// One (topology, scenario) cell of the scorecard.
struct BenchmarkCell {
  std::string topology;
  std::string scenario;
  std::string app;              // diagnosing application ("bgp"/"innet"/"cdn")
  std::size_t records = 0;      // raw telemetry records in the corpus
  std::size_t truth_total = 0;
  std::size_t diagnosed = 0;
  std::size_t matched = 0;
  std::size_t correct = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double records_per_min = 0.0;  // 0 when timing is disabled
};

struct BenchmarkResult {
  BenchmarkOptions options;
  std::vector<std::string> topologies;
  std::vector<std::string> scenarios;
  std::vector<BenchmarkCell> cells;  // topology-major, scenario-minor order
};

/// The per-cell corpus seed: `base` mixed with stable hashes of the topology
/// and scenario names. Exposed so other drivers (`grca learn`'s scenario
/// mode) can regenerate the exact corpus of a benchmark cell.
std::uint64_t cell_seed(std::uint64_t base, std::string_view topology,
                        std::string_view scenario);

/// Runs the matrix. Cell corpora are deterministic in (options.seed,
/// topology name, scenario name) — independent of matrix composition, so
/// adding a topology never changes existing cells.
BenchmarkResult run_benchmark(const std::vector<BenchmarkTopology>& topologies,
                              const BenchmarkOptions& options);

/// The scorecard document ("grca-benchmark-v1"): per-cell metrics plus
/// per-scenario and overall micro-averages. Byte-stable for fixed inputs
/// when options.timing is false.
std::string render_scorecard_json(const BenchmarkResult& result);

/// Flat {"<topology>.<scenario>.<metric>": value} document for
/// tools/bench_diff.py gating (plus "overall.*" aggregates).
std::string render_gate_json(const BenchmarkResult& result);

/// Human-readable matrix for the terminal.
util::TextTable render_scorecard_table(const BenchmarkResult& result);

}  // namespace grca::apps
