// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The in-network packet-loss application: the paper's motivating §I/§II
// scenario. End-to-end probes between PoPs report sporadic loss; G-RCA
// classifies a month of those events in aggregate, and the breakdown drives
// an engineering action: "should link congestion be determined to be the
// primary root cause, capacity augmentation is needed ... if packet losses
// are found to be largely due to intradomain routing reconvergence,
// deploying technologies such as MPLS fast reroute becomes a priority."
//
// Unlike the three §III case studies this one is built *entirely* from
// Knowledge Library events and rules — zero application-specific events —
// demonstrating the platform's reuse claim at its extreme.
#pragma once

#include "core/diagnosis_graph.h"
#include "core/result_browser.h"

namespace grca::apps::innet {

/// Library + root selection (no app-specific events or rules at all).
core::DiagnosisGraph build_graph();

void configure_browser(core::ResultBrowser& browser);

std::string canonical_cause(const std::string& primary);

/// The §I engineering recommendation derived from a breakdown.
/// Returns a short operator-facing sentence.
std::string recommend_action(const std::map<std::string, double>& percentages);

}  // namespace grca::apps::innet
