// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/scoring.h"

#include <algorithm>

namespace grca::apps {

namespace {

/// The (symptom, location) matching key shared by truth entries and
/// diagnosis symptom locations.
std::string truth_key(const sim::TruthEntry& entry) {
  return entry.symptom + "@" + entry.router + "@" + entry.detail;
}

std::string diagnosis_key(const core::Diagnosis& d) {
  const core::Location& where = d.symptom.where;
  std::string detail = where.b;
  if (!where.c.empty()) detail += "|" + where.c;
  return d.symptom.name + "@" + where.a + "@" + detail;
}

}  // namespace

util::TextTable Score::confusion_table() const {
  std::vector<std::tuple<std::size_t, std::string, std::string>> rows;
  for (const auto& [truth_cause, diagnosed] : confusion) {
    for (const auto& [diag_cause, count] : diagnosed) {
      rows.emplace_back(count, truth_cause, diag_cause);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) > std::get<0>(b);
  });
  util::TextTable table({"Truth Cause", "Diagnosed As", "Count"});
  for (const auto& [count, truth_cause, diag_cause] : rows) {
    table.add_row({truth_cause, diag_cause, std::to_string(count)});
  }
  return table;
}

Score score_diagnoses(
    const std::vector<core::Diagnosis>& diagnoses,
    const std::vector<sim::TruthEntry>& truth,
    const std::function<std::string(const std::string&)>& canonical,
    util::TimeSec tolerance) {
  struct Entry {
    util::TimeSec time;
    const std::string* cause;
    bool used = false;
  };
  std::map<std::string, std::vector<Entry>> index;
  for (const sim::TruthEntry& e : truth) {
    index[truth_key(e)].push_back(Entry{e.time, &e.cause});
  }
  for (auto& [key, entries] : index) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.time < b.time; });
  }

  Score score;
  score.truth_total = truth.size();
  score.diagnosed_total = diagnoses.size();
  for (const core::Diagnosis& d : diagnoses) {
    auto it = index.find(diagnosis_key(d));
    if (it == index.end()) continue;
    // Nearest unused truth entry within tolerance.
    Entry* best = nullptr;
    util::TimeSec best_gap = tolerance + 1;
    for (Entry& e : it->second) {
      util::TimeSec gap = std::abs(e.time - d.symptom.when.start);
      if (!e.used && gap <= tolerance && gap < best_gap) {
        best = &e;
        best_gap = gap;
      }
    }
    if (best == nullptr) continue;
    best->used = true;
    ++score.matched;
    std::string diagnosed =
        canonical ? canonical(d.primary()) : d.primary();
    ++score.confusion[*best->cause][diagnosed];
    if (diagnosed == *best->cause) ++score.correct;
  }
  return score;
}

Score score_diagnoses_window(
    const std::vector<core::Diagnosis>& diagnoses,
    const std::vector<sim::TruthEntry>& truth, util::TimeSec from,
    util::TimeSec to,
    const std::function<std::string(const std::string&)>& canonical,
    util::TimeSec tolerance) {
  std::vector<core::Diagnosis> d;
  for (const core::Diagnosis& x : diagnoses) {
    if (x.symptom.when.start >= from && x.symptom.when.start < to) {
      d.push_back(x);
    }
  }
  std::vector<sim::TruthEntry> t;
  for (const sim::TruthEntry& e : truth) {
    if (e.time >= from && e.time < to) t.push_back(e);
  }
  return score_diagnoses(d, t, canonical, tolerance);
}

}  // namespace grca::apps
