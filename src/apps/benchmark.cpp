// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/benchmark.h"

#include <chrono>
#include <map>
#include <sstream>

#include "apps/bgp_flap_app.h"
#include "apps/cdn_app.h"
#include "apps/innet_app.h"
#include "apps/pipeline.h"
#include "apps/scoring.h"
#include "obs/export.h"
#include "util/error.h"
#include "util/strings.h"

namespace grca::apps {

namespace {

/// Stable 64-bit string hash (FNV-1a). std::hash is not guaranteed stable
/// across standard libraries, and cell seeds must match everywhere.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct AppHooks {
  core::DiagnosisGraph (*build_graph)();
  std::string (*canonical)(const std::string&);
};

AppHooks hooks_for_app(const std::string& app) {
  if (app == "bgp") return {bgp::build_graph, bgp::canonical_cause};
  if (app == "cdn") return {cdn::build_graph, cdn::canonical_cause};
  if (app == "innet") return {innet::build_graph, innet::canonical_cause};
  throw ConfigError("benchmark: unknown application: " + app);
}

std::string ratio(double v) { return util::format_double(v, 4); }

void append_metrics(std::ostringstream& os, const BenchmarkCell& c,
                    bool timing) {
  os << "\"records\": " << c.records << ", \"truth\": " << c.truth_total
     << ", \"diagnosed\": " << c.diagnosed << ", \"matched\": " << c.matched
     << ", \"correct\": " << c.correct
     << ", \"precision\": " << ratio(c.precision)
     << ", \"recall\": " << ratio(c.recall) << ", \"f1\": " << ratio(c.f1);
  if (timing) {
    os << ", \"records_per_min\": " << util::format_double(c.records_per_min, 1);
  }
}

/// Micro-averaged aggregate over a set of cells.
struct Aggregate {
  std::size_t truth = 0, diagnosed = 0, correct = 0;

  void add(const BenchmarkCell& c) {
    truth += c.truth_total;
    diagnosed += c.diagnosed;
    correct += c.correct;
  }
  double precision() const {
    return diagnosed == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(diagnosed);
  }
  double recall() const {
    return truth == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(truth);
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

}  // namespace

std::uint64_t cell_seed(std::uint64_t base, std::string_view topology,
                        std::string_view scenario) {
  return base ^ fnv1a(topology) ^ (fnv1a(scenario) << 1);
}

BenchmarkResult run_benchmark(const std::vector<BenchmarkTopology>& topologies,
                              const BenchmarkOptions& options) {
  if (topologies.empty()) {
    throw ConfigError("benchmark: no topologies given");
  }
  BenchmarkResult result;
  result.options = options;
  std::vector<sim::ScenarioClass> classes =
      options.scenarios.empty() ? sim::all_scenario_classes()
                                : options.scenarios;
  for (const BenchmarkTopology& topo : topologies) {
    result.topologies.push_back(topo.name);
  }
  for (sim::ScenarioClass c : classes) {
    result.scenarios.push_back(sim::to_string(c));
  }

  for (const BenchmarkTopology& topo : topologies) {
    for (sim::ScenarioClass c : classes) {
      const topology::Network& net = *topo.net;
      BenchmarkCell cell;
      cell.topology = topo.name;
      cell.scenario = sim::to_string(c);
      cell.app = sim::scenario_app(c);

      sim::ScenarioParams params;
      params.days = options.days;
      params.target_symptoms = options.target_symptoms;
      params.noise = options.noise;
      // Cell seeds depend only on (base seed, topology name, scenario
      // name): matrix composition never shifts an existing cell's corpus.
      params.seed = cell_seed(options.seed, topo.name, cell.scenario);
      sim::StudyOutput study = sim::run_scenario(c, net, params);
      cell.records = study.records.size();
      cell.truth_total = study.truth.size();

      AppHooks hooks = hooks_for_app(cell.app);
      std::vector<topology::RouterId> observers;
      if (cell.app == "cdn" && !net.cdn_nodes().empty()) {
        observers = net.cdn_nodes().front().ingress_routers;
      }

      auto t0 = std::chrono::steady_clock::now();
      Pipeline pipeline(net, study.records, {}, observers);
      std::vector<core::Diagnosis> diagnoses =
          pipeline.diagnose_all(hooks.build_graph(), options.threads);
      auto t1 = std::chrono::steady_clock::now();

      Score score = score_diagnoses(diagnoses, study.truth, hooks.canonical);
      cell.diagnosed = score.diagnosed_total;
      cell.matched = score.matched;
      cell.correct = score.correct;
      cell.precision = score.precision();
      cell.recall = score.recall();
      cell.f1 = score.f1();
      if (options.timing) {
        double secs = std::chrono::duration<double>(t1 - t0).count();
        cell.records_per_min =
            secs > 0.0 ? static_cast<double>(cell.records) * 60.0 / secs : 0.0;
      }
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

std::string render_scorecard_json(const BenchmarkResult& result) {
  const bool timing = result.options.timing;
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"grca-benchmark-v1\",\n";
  os << "  \"seed\": " << result.options.seed << ",\n";
  os << "  \"days\": " << result.options.days << ",\n";
  os << "  \"target_symptoms\": " << result.options.target_symptoms << ",\n";
  os << "  \"topologies\": [";
  for (std::size_t i = 0; i < result.topologies.size(); ++i) {
    os << (i ? ", " : "") << '"' << obs::json_escape(result.topologies[i])
       << '"';
  }
  os << "],\n  \"scenarios\": [";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    os << (i ? ", " : "") << '"' << obs::json_escape(result.scenarios[i])
       << '"';
  }
  os << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const BenchmarkCell& c = result.cells[i];
    os << "    {\"topology\": \"" << obs::json_escape(c.topology)
       << "\", \"scenario\": \"" << obs::json_escape(c.scenario)
       << "\", \"app\": \"" << c.app << "\", ";
    append_metrics(os, c, timing);
    os << '}' << (i + 1 < result.cells.size() ? "," : "") << '\n';
  }
  os << "  ],\n";

  std::map<std::string, Aggregate> by_scenario;
  Aggregate overall;
  for (const BenchmarkCell& c : result.cells) {
    by_scenario[c.scenario].add(c);
    overall.add(c);
  }
  os << "  \"scenario_summary\": {\n";
  // Canonical scenario order, not map order.
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const Aggregate& a = by_scenario[result.scenarios[i]];
    os << "    \"" << obs::json_escape(result.scenarios[i])
       << "\": {\"precision\": " << ratio(a.precision())
       << ", \"recall\": " << ratio(a.recall())
       << ", \"f1\": " << ratio(a.f1()) << '}'
       << (i + 1 < result.scenarios.size() ? "," : "") << '\n';
  }
  os << "  },\n";
  os << "  \"overall\": {\"precision\": " << ratio(overall.precision())
     << ", \"recall\": " << ratio(overall.recall())
     << ", \"f1\": " << ratio(overall.f1()) << "}\n";
  os << "}\n";
  return os.str();
}

std::string render_gate_json(const BenchmarkResult& result) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    os << (first ? "" : ",\n") << "  \"" << obs::json_escape(key)
       << "\": " << value;
    first = false;
  };
  Aggregate overall;
  for (const BenchmarkCell& c : result.cells) {
    std::string base = c.topology + "." + c.scenario;
    emit(base + ".precision", ratio(c.precision));
    emit(base + ".recall", ratio(c.recall));
    emit(base + ".f1", ratio(c.f1));
    if (result.options.timing) {
      emit(base + ".records_per_min",
           util::format_double(c.records_per_min, 1));
    }
    overall.add(c);
  }
  emit("overall.precision", ratio(overall.precision()));
  emit("overall.recall", ratio(overall.recall()));
  emit("overall.f1", ratio(overall.f1()));
  os << "\n}\n";
  return os.str();
}

util::TextTable render_scorecard_table(const BenchmarkResult& result) {
  std::vector<std::string> header = {"Topology", "Scenario",  "App",
                                     "Truth",    "Diagnosed", "Correct",
                                     "Precision", "Recall",   "F1"};
  if (result.options.timing) header.push_back("Records/min");
  util::TextTable table(header);
  for (const BenchmarkCell& c : result.cells) {
    std::vector<std::string> row = {
        c.topology,
        c.scenario,
        c.app,
        std::to_string(c.truth_total),
        std::to_string(c.diagnosed),
        std::to_string(c.correct),
        ratio(c.precision),
        ratio(c.recall),
        ratio(c.f1)};
    if (result.options.timing) {
      row.push_back(util::format_double(c.records_per_min, 0));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace grca::apps
