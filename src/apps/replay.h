// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// High-rate feed replay harness. The paper's deployment ingested hundreds
// of millions of records/day from ~600 sources; this replayer exercises
// StreamingRca at comparable (time-compressed) rates against a synthetic
// scenario or a recorded corpus, and closes the validation loop the feed-
// health metrics were built for: at the end of a run, every record the
// generator emitted must be accounted for (stored, rejected, or
// late-dropped — nothing silently vanishes at speed), and every
// ground-truth symptom must carry a streaming verdict identical to the
// batch Pipeline's on the same data.
//
// Architecture: records are sharded by telemetry source onto N ingest
// threads — each shard models a feed delivering its records in arrival
// order through a bounded queue, like the per-feed collectors in front of
// the real platform. Arrival times are derived deterministically from a
// seed (a stable per-source delivery lag plus per-record jitter), so the
// schedule is identical for every thread count and every run. The driver
// thread k-way-merges the shard queues by (arrival, sequence) — a total
// order independent of thread scheduling — paces against the scaled wall
// clock (`rate` sim-seconds per wall-second; <= 0 means as fast as
// possible), and drives StreamingRca::ingest/advance while sampling the
// metrics registry. Determinism of the merge is what makes the
// conservation and differential checks exact instead of statistical.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/streaming.h"
#include "simulation/scenario.h"

namespace grca::apps {

struct ReplayOptions {
  /// Time-compression factor: sim-seconds replayed per wall-clock second
  /// (100.0 = "100x real time"). <= 0 replays as fast as possible.
  double rate = 0.0;
  /// Feed shards delivering records concurrently. Sharding is by telemetry
  /// source, so at most one thread per source type does useful work.
  unsigned ingest_threads = 1;
  /// Stream-clock advance interval, in sim seconds.
  util::TimeSec tick = 300;
  /// Arrival-skew model, in sim seconds: every source gets a stable
  /// delivery lag drawn from [0, source_lag] and every record an extra
  /// jitter from [0, record_jitter], both seeded. Keep the sum below the
  /// stream's max_skew (and freeze horizon) for a loss-free replay;
  /// records delayed beyond it are late-dropped and accounted for in the
  /// conservation check.
  util::TimeSec source_lag = 0;
  util::TimeSec record_jitter = 0;
  std::uint64_t seed = 1;
  /// Per-shard hand-off queue capacity, in record chunks.
  std::size_t shard_queue_chunks = 64;
  /// Thread count for the batch reference diagnosis (0 = hardware).
  unsigned batch_threads = 0;
  StreamingOptions stream;
};

/// Record-level conservation: everything the generator emitted is either
/// stored in the stream buffer, rejected by the collector (unknown
/// device), or dropped as late — and the feed-health registry view must
/// agree with the engine's own counts.
struct ConservationCheck {
  std::size_t emitted = 0;
  std::size_t stored = 0;
  std::size_t rejected = 0;
  std::size_t dropped_late = 0;
  // The same flows as seen by the FeedHealthMonitor (obs registry view).
  std::uint64_t feed_records = 0;
  std::uint64_t feed_rejected = 0;
  std::uint64_t feed_late_drops = 0;

  std::int64_t unaccounted() const noexcept {
    return static_cast<std::int64_t>(emitted) -
           static_cast<std::int64_t>(stored) -
           static_cast<std::int64_t>(rejected) -
           static_cast<std::int64_t>(dropped_late);
  }
  bool conserved() const noexcept {
    return unaccounted() == 0 && feed_records == stored + dropped_late &&
           feed_rejected == rejected && feed_late_drops == dropped_late;
  }
};

/// Streaming-vs-batch verdict diff over (symptom location, start) keys.
struct VerdictDiff {
  std::size_t compared = 0;        // keys present on both sides
  std::size_t mismatched = 0;      // primary() differs
  std::size_t streaming_only = 0;  // diagnosed only by the streaming run
  std::size_t batch_only = 0;      // diagnosed only by the batch run

  bool identical() const noexcept {
    return mismatched == 0 && streaming_only == 0 && batch_only == 0;
  }
};

/// Ground-truth coverage: every injected symptom must be matched by a
/// streaming diagnosis (within the scoring tolerance).
struct TruthCheck {
  std::size_t truth_total = 0;
  std::size_t matched = 0;   // truth entries matched by a streaming diagnosis
  std::size_t correct = 0;   // ... with the right canonical root cause
  VerdictDiff verdicts;      // streaming vs batch Pipeline
  double batch_wall_seconds = 0.0;

  bool passed() const noexcept {
    return matched == truth_total && verdicts.identical();
  }
};

struct SourceReplayStats {
  telemetry::SourceType source = telemetry::SourceType::kSyslog;
  std::uint64_t records = 0;
  std::uint64_t rejected = 0;
  std::uint64_t late_drops = 0;
};

struct ReplayReport {
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  std::size_t ticks = 0;
  std::size_t diagnoses_count = 0;
  // Ingest-call latency (wall time of one StreamingRca::ingest), in µs.
  double ingest_p50_us = 0.0;
  double ingest_p99_us = 0.0;
  double ingest_max_us = 0.0;
  /// High-water mark of records buffered across the shard hand-off queues.
  std::size_t queue_high_water = 0;
  /// Detection latency in sim seconds (symptom start -> diagnosis tick).
  double detection_mean_s = 0.0;
  util::TimeSec detection_max_s = 0;
  ConservationCheck conservation;
  std::optional<TruthCheck> truth;  // present when truth labels were given
  std::vector<SourceReplayStats> sources;
  /// Peak values of every gauge sampled during the run (freeze lag,
  /// streaming queue depth, feed gaps, ...), by registry name.
  std::map<std::string, double> gauge_peaks;
  /// The streaming diagnoses themselves, in emission order.
  std::vector<core::Diagnosis> diagnoses;

  double records_per_min() const noexcept { return records_per_sec * 60.0; }
  /// The hard gate: conservation plus (when truth was given) full
  /// ground-truth coverage with batch-identical verdicts.
  bool passed() const noexcept {
    return conservation.conserved() && (!truth || truth->passed());
  }
};

/// Renders the report as a single JSON document (BENCH_replay.json).
std::string render_json(const ReplayReport& report);

/// Renders a human-readable summary for the console.
std::string render_text(const ReplayReport& report);

class FeedReplayer {
 public:
  FeedReplayer(const topology::Network& net, ReplayOptions options = {});

  /// Replays `records` (generator/archive order) against a fresh
  /// StreamingRca over `graph`. When `truth` is non-null the report also
  /// carries the ground-truth check: scoring coverage plus a verdict diff
  /// against a batch Pipeline run over the same records (`canonical` folds
  /// application primaries onto truth labels; identity when empty).
  ReplayReport replay(
      const telemetry::RecordStream& records, const core::DiagnosisGraph& graph,
      const std::vector<sim::TruthEntry>* truth = nullptr,
      const std::function<std::string(const std::string&)>& canonical = {});

 private:
  const topology::Network& net_;
  ReplayOptions options_;
};

}  // namespace grca::apps
