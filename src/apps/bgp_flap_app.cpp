// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/bgp_flap_app.h"

#include "core/knowledge_library.h"
#include "core/rule_dsl.h"

namespace grca::apps::bgp {

namespace {

// Fig. 4: gray boxes = application-specific events (Table III), dashed lines
// = application-specific rules. Numbers on edges = priorities; the deeper
// cause on a branch gets the higher priority (§II-D.1). The 180/185 s
// margins model the eBGP hold timer; 5-10 s margins model syslog jitter.
constexpr std::string_view kAppDsl = R"DSL(
event ebgp-flap {
  location router-neighbor
  source syslog
  retrieval syslog-ebgp-flap
  desc "eBGP session goes down and comes up, BGP-5-ADJCHANGE msg"
}
event customer-reset-session {
  location router-neighbor
  source syslog
  retrieval syslog-bgp-reset
  desc "eBGP session is reset by the customer, BGP-5-NOTIFICATION msg"
}
event ebgp-hte {
  location router-neighbor
  source syslog
  retrieval syslog-bgp-hte
  desc "eBGP hold timer expired, BGP-5-NOTIFICATION msg"
}
event bgp-prefix-flood {
  location router-neighbor
  source bgp-monitor
  retrieval bgpmon-announce-burst
  desc "session floods prefix announcements until max-prefix tears it down"
}

rule ebgp-flap -> bgp-prefix-flood {
  priority 210
  symptom start-start 120 5
  diagnostic start-end 5 30
  join router-neighbor
}
rule ebgp-flap -> router-reboot {
  priority 200
  symptom start-start 10 5
  diagnostic start-end 5 10
  join router
}
rule ebgp-flap -> customer-reset-session {
  priority 190
  symptom start-start 10 10
  diagnostic start-end 10 10
  join router-neighbor
}
rule ebgp-flap -> interface-flap {
  priority 180
  symptom start-start 185 5
  diagnostic start-end 5 15
  join interface
}
rule ebgp-flap -> line-protocol-flap {
  priority 170
  symptom start-start 185 5
  diagnostic start-end 5 15
  join interface
}
rule ebgp-flap -> ebgp-hte {
  priority 100
  symptom start-start 10 10
  diagnostic start-end 10 10
  join router-neighbor
}
rule ebgp-hte -> cpu-high-spike {
  priority 150
  symptom start-start 40 5
  diagnostic start-end 5 35
  join router
}
rule ebgp-hte -> cpu-high-avg {
  priority 140
  symptom start-start 310 10
  diagnostic start-end 10 130
  join router
}

graph {
  root ebgp-flap
}
)DSL";

}  // namespace

std::string_view app_dsl() { return kAppDsl; }

core::DiagnosisGraph build_graph() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  core::load_dsl(kAppDsl, graph);
  graph.validate();
  return graph;
}

void configure_browser(core::ResultBrowser& browser) {
  browser.set_display_name("bgp-prefix-flood", "BGP route leak (prefix flood)");
  browser.set_display_name("router-reboot", "Router reboot");
  browser.set_display_name("customer-reset-session", "Customer reset session");
  browser.set_display_name("cpu-high-avg", "CPU high (average)");
  browser.set_display_name("cpu-high-spike", "CPU high (spike)");
  browser.set_display_name("interface-flap", "Interface flap");
  browser.set_display_name("line-protocol-flap", "Line protocol flap");
  browser.set_display_name("ebgp-hte", "eBGP HTE (due to unknown reasons)");
  browser.set_display_name("optical-restoration-regular",
                           "Regular optical mesh network restoration");
  browser.set_display_name("optical-restoration-fast",
                           "Fast optical mesh network restoration");
  browser.set_display_name("sonet-restoration", "SONET restoration");
  browser.set_display_name("unknown", "Unknown");
  browser.set_display_order(
      {"bgp-prefix-flood", "router-reboot", "customer-reset-session",
       "cpu-high-avg",
       "cpu-high-spike", "interface-flap", "line-protocol-flap", "ebgp-hte",
       "optical-restoration-regular", "optical-restoration-fast",
       "sonet-restoration", "unknown"});
}

std::string canonical_cause(const std::string& primary) { return primary; }

core::BayesEngine build_bayes() {
  using core::FuzzyLevel;
  core::BayesEngine bayes;
  // Fig. 8: three virtual root-cause classes. Priors reflect base rates —
  // interface problems are routine, line-card crashes rare.
  bayes.add_cause("interface-issue", FuzzyLevel::kMedium);
  bayes.add_cause("cpu-high-issue", FuzzyLevel::kLow);
  bayes.add_cause("linecard-issue", FuzzyLevel::kLow);
  // Observable evidence support.
  bayes.add_link("interface-issue", "has:interface-flap", FuzzyLevel::kHigh);
  bayes.add_link("interface-issue", "has:line-protocol-flap",
                 FuzzyLevel::kMedium);
  bayes.add_link("cpu-high-issue", "has:cpu-high-spike", FuzzyLevel::kHigh);
  bayes.add_link("cpu-high-issue", "has:cpu-high-avg", FuzzyLevel::kHigh);
  bayes.add_link("cpu-high-issue", "has:ebgp-hte", FuzzyLevel::kMedium);
  // The unobservable cause: a single interface flap is weak support, but a
  // burst of flaps across one line card is near-conclusive — and that same
  // burst is strong evidence *against* independent per-interface problems.
  bayes.add_link("linecard-issue", "has:interface-flap", FuzzyLevel::kMedium);
  bayes.add_link("linecard-issue", "burst-same-linecard", FuzzyLevel::kHigh);
  bayes.add_contra_link("interface-issue", "burst-same-linecard",
                        FuzzyLevel::kHigh);
  return bayes;
}

std::string linecard_group_key(const core::Diagnosis& diagnosis,
                               const core::LocationMapper& mapper) {
  for (const core::EvidenceNode& node : diagnosis.evidence) {
    if (node.event != "interface-flap" || node.instances.empty()) continue;
    auto cards = mapper.project(node.instances.front()->where,
                                core::LocationType::kLineCard,
                                diagnosis.symptom.when.start);
    if (!cards.empty()) return cards.front().key();
  }
  return "";
}

core::FeatureSet group_features(const core::SymptomGroup& group,
                                int burst_threshold) {
  core::FeatureSet features = group.features;
  if (static_cast<int>(group.members.size()) >= burst_threshold) {
    features["burst-same-linecard"] = true;
  }
  return features;
}

}  // namespace grca::apps::bgp
