// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The BGP-flap RCA application (paper §III-A, Fig. 4, Tables III/IV): three
// application-specific events layered over the Knowledge Library, the Fig. 4
// diagnosis graph with edge priorities, the Table IV display mapping, and
// the Fig. 8 Bayesian configuration (virtual causes incl. the unobservable
// "Line-card Issue").
#pragma once

#include "core/diagnosis_graph.h"
#include "core/reasoning_bayes.h"
#include "core/result_browser.h"

namespace grca::apps::bgp {

/// The application-specific DSL (Table III events + Fig. 4 rules).
std::string_view app_dsl();

/// Knowledge Library + application config, rooted at ebgp-flap.
core::DiagnosisGraph build_graph();

/// Table IV row labels and their fixed order.
void configure_browser(core::ResultBrowser& browser);

/// Maps a diagnosed primary event to the canonical cause label used by the
/// scenario ground truth (identity for this app).
std::string canonical_cause(const std::string& primary);

/// The Fig. 8 Bayesian configuration: virtual causes "cpu-high-issue",
/// "interface-issue", "linecard-issue" over the evidence features.
core::BayesEngine build_bayes();

/// Grouping key for joint Bayesian inference: the line card carrying the
/// session's evidenced interface flap ("" when no interface evidence). 133
/// flaps on one card group together and reveal the line-card issue.
std::string linecard_group_key(const core::Diagnosis& diagnosis,
                               const core::LocationMapper& mapper);

/// Derived group features: members' union plus "burst-same-linecard" when
/// the group has >= `burst_threshold` members (all sharing the key card).
core::FeatureSet group_features(const core::SymptomGroup& group,
                                int burst_threshold = 10);

}  // namespace grca::apps::bgp
