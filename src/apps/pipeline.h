// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The end-to-end RCA-side pipeline (paper Fig. 1, right half): raw telemetry
// -> Data Collector (normalize + index) -> route-monitor replay -> retrieval
// processes -> event store, with the LocationMapper wired over the
// config-derived network and the rebuilt routing view. Every application
// runs on top of one Pipeline instance.
#pragma once

#include <memory>
#include <vector>

#include "collector/extract.h"
#include "collector/normalizer.h"
#include "collector/record_index.h"
#include "collector/routing_rebuild.h"
#include "core/engine.h"
#include "core/location.h"
#include "core/result_browser.h"
#include "obs/feed_health.h"

namespace grca::apps {

class Pipeline {
 public:
  /// Ingests a raw stream against the (config-derived) network.
  /// `egress_observers` are the routers at which BGP egress changes are
  /// evaluated (e.g. CDN ingress routers); empty disables that extraction.
  Pipeline(const topology::Network& net, const telemetry::RecordStream& raw,
           collector::ExtractOptions options = {},
           std::vector<topology::RouterId> egress_observers = {});

  /// External-store mode: events come from `events` (e.g. a
  /// storage::PersistentEventStore opened from disk) instead of being
  /// re-extracted from the raw stream. The raw stream is still replayed to
  /// rebuild the routing view the LocationMapper joins against — that is
  /// collector state, not event state — but the extraction stage (the
  /// expensive part of ingest) is skipped entirely. Diagnosis over the
  /// external view is byte-identical to a fresh-extraction run over the
  /// same corpus.
  Pipeline(const topology::Network& net, const telemetry::RecordStream& raw,
           std::shared_ptr<const core::EventStoreView> events);

  const topology::Network& network() const noexcept { return net_; }
  const collector::RecordIndex& index() const noexcept { return index_; }
  const collector::RebuiltRouting& routing() const noexcept { return routing_; }
  core::EventStore& store() noexcept { return store_; }
  const core::EventStore& store() const noexcept { return store_; }
  /// The event view diagnosis runs against: the external store when one
  /// was supplied, the pipeline's own in-memory store otherwise.
  const core::EventStoreView& events() const noexcept {
    return external_ ? *external_ : store_;
  }
  const core::LocationMapper& mapper() const noexcept { return mapper_; }

  /// Per-source ingest health, accumulated while the archive was replayed
  /// (counts, rejects, arrival-lag distribution, end-of-archive gaps).
  const obs::FeedHealthMonitor& feed_health() const noexcept {
    return feed_health_;
  }

  /// Drill-down context source for the Result Browser: raw records on the
  /// routers spanned by a location.
  core::ResultBrowser::ContextLookup context_lookup() const;

  /// Runs one application's full RCA over this pipeline's store, fanning
  /// per-symptom diagnosis out over `threads` workers (0 = hardware
  /// concurrency, 1 = serial). The result is identical — same diagnoses,
  /// same order — for every thread count.
  std::vector<core::Diagnosis> diagnose_all(core::DiagnosisGraph graph,
                                            unsigned threads = 0) const;

  /// Shard-worker fan-out: diagnoses only the root instances at `indices`
  /// of the store's root span, optionally restricting spatial joins to
  /// `allowed_locations` (empty = no filter; see
  /// RcaEngine::set_location_filter). Result i corresponds to indices[i]
  /// and is byte-identical to the same symptom's diagnosis in a full
  /// diagnose_all, provided the filter admits every location the symptom's
  /// evidence chains can reach (the partitioner's inclusion invariant).
  std::vector<core::Diagnosis> diagnose_selected(
      core::DiagnosisGraph graph, std::span<const std::uint32_t> indices,
      std::vector<core::Location> allowed_locations = {},
      unsigned threads = 0) const;

  /// Per-application fan-out: diagnoses several applications' graphs
  /// concurrently on one pool over the shared store. Results are returned
  /// in input order, each identical to a serial diagnose_all of that graph.
  std::vector<std::vector<core::Diagnosis>> diagnose_apps(
      std::vector<core::DiagnosisGraph> graphs, unsigned threads = 0) const;

 private:
  const topology::Network& net_;
  obs::FeedHealthMonitor feed_health_;  // must precede index_ (normalizer
                                        // reports into it during ingest)
  collector::RecordIndex index_;
  collector::RebuiltRouting routing_;
  core::EventStore store_;
  std::shared_ptr<const core::EventStoreView> external_;  // may be null
  core::LocationMapper mapper_;
};

}  // namespace grca::apps
