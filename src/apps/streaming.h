// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Streaming (real-time) RCA — the paper's §VI future-work item "support
// real-time root cause applications", built on the same collector and
// engine as the batch pipeline.
//
// Design: raw records are ingested as they arrive (out-of-order within a
// bounded skew). Event extraction is finalized behind a sliding *freeze
// horizon* H: an event starting before `now - H` can no longer change (every
// flap pairs within the pairing window < H), so it is extracted exactly once
// and added to the store. Symptom instances are diagnosed once they are both
// frozen and older than the *settle window* S — the maximum forward
// lookahead any diagnosis rule needs — so late diagnostic evidence is
// guaranteed to be present. Each advance() returns the newly completed
// diagnoses; detection latency is therefore bounded by S plus the tick
// interval.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include "collector/extract.h"
#include "collector/normalizer.h"
#include "collector/routing_rebuild.h"
#include "core/engine.h"
#include "obs/feed_health.h"
#include "storage/segment.h"
#include "util/thread_pool.h"

namespace grca::storage {
class EventLogWriter;
}  // namespace grca::storage

namespace grca::apps {

struct StreamingOptions {
  /// Freeze horizon: extraction is finalized this far behind `now`. Must
  /// exceed the flap-pairing window.
  util::TimeSec freeze_horizon = 2 * util::kHour;
  /// Settle window: symptoms are diagnosed this long after they start, so
  /// delayed evidence (timers, 5-minute SNMP bins) has arrived.
  util::TimeSec settle = 600;
  /// Maximum tolerated arrival skew; older records are dropped and counted.
  util::TimeSec max_skew = util::kHour;
  /// Diagnosis workers between event freezing and diagnosis: 0 or 1
  /// diagnoses inline on the caller's thread; N > 1 starts N persistent
  /// workers fed through a bounded queue. Diagnoses are returned in the
  /// same order as the serial run regardless of worker count.
  unsigned workers = 1;
  collector::ExtractOptions extract;
  /// Write-ahead persistence (empty = off): every frozen event is appended
  /// to the segmented event log at this directory the moment it enters the
  /// store, and the log is sealed into an indexed segment every
  /// `persist_seal_every` stream-seconds of freeze progress (and on
  /// drain()). If the directory already holds sealed segments, the engine
  /// *resumes*: sealed events reload into the store, extraction of the
  /// already-persisted region is suppressed, and the diagnosis cursor
  /// skips symptoms the previous incarnation already reported — re-feeding
  /// the same raw stream then yields exactly the diagnoses the killed run
  /// never got to emit. A leftover WAL (torn by the crash) is discarded:
  /// its events are re-derived from the stream.
  std::filesystem::path persist_dir;
  util::TimeSec persist_seal_every = util::kHour;
  /// On-disk format for sealed segments (the WAL is always v1 frames).
  storage::SealFormat persist_format = storage::SealFormat::kV2;
};

class StreamingRca {
 public:
  StreamingRca(const topology::Network& net, core::DiagnosisGraph graph,
               StreamingOptions options = {});

  /// Drains the diagnosis worker stage (closes the job queue, joins the
  /// workers). Any batch in flight completes first.
  ~StreamingRca();

  /// Feeds one raw record. Records may arrive out of order by up to
  /// max_skew relative to the high-water mark already ingested. Every record
  /// is accounted for in exactly one of stored() / rejected() /
  /// dropped_late() — the conservation invariant the replay harness checks.
  void ingest(const telemetry::RawRecord& raw);

  /// Advances the stream clock and returns diagnoses newly completed at
  /// `now`. `now` must be non-decreasing across calls; a backwards clock is
  /// a caller bug and throws StateError (the contract is pinned, not UB).
  std::vector<core::Diagnosis> advance(util::TimeSec now);

  /// Finalizes everything buffered and diagnoses all remaining symptoms.
  /// Idempotent: a second drain() (with no ingest in between) returns an
  /// empty vector.
  std::vector<core::Diagnosis> drain();

  /// Injects a synthesized (non-telemetry) event instance directly into the
  /// event store — the alert engine's path for "missing data" evidence. Call
  /// from the ingest thread between advance() calls only: the store is
  /// single-writer and must not move while a diagnosis batch is in flight.
  /// Injected instances are not written to the persistence WAL (they are
  /// re-derivable from the feed-health metrics that raised them) and must
  /// not use the graph root's name — the diagnosis cursor walks the root
  /// bucket by insertion order, so a foreign instance there would corrupt
  /// resume bookkeeping. Throws ConfigError on a root-named instance.
  void inject(core::EventInstance instance);
  /// Instances added through inject() so far.
  std::size_t injected() const noexcept { return injected_; }

  const core::EventStore& store() const noexcept { return store_; }
  /// Records accepted into the stream buffer (normalized, within skew).
  std::size_t stored() const noexcept { return stored_; }
  /// Records rejected by the collector (unknown device).
  std::size_t rejected() const noexcept { return normalizer_.dropped(); }
  std::size_t dropped_late() const noexcept { return dropped_late_; }
  std::size_t diagnosed() const noexcept { return diagnosed_count_; }

  /// Per-source feed health (arrival counts, lag, gaps, late drops),
  /// updated on every ingest and re-evaluated against the clock on every
  /// advance(). Call from the ingest thread.
  const obs::FeedHealthMonitor& feed_health() const noexcept {
    return feed_health_;
  }

  /// The sealed watermark this engine resumed from, when persistence found
  /// an existing log (nullopt on a fresh start or without persistence).
  std::optional<util::TimeSec> resumed_from() const noexcept {
    return resumed_from_;
  }

 private:
  /// Extracts events from the buffered records and freezes those starting
  /// in [frozen_cut_, new_cut).
  void freeze_until(util::TimeSec new_cut);
  /// Diagnoses frozen, settled, not-yet-diagnosed symptoms. With workers
  /// configured, the batch is pushed through the bounded queue and this
  /// call blocks until the whole batch is diagnosed — the store is never
  /// mutated while workers are running.
  std::vector<core::Diagnosis> diagnose_ready(util::TimeSec ready_cut);
  /// Publishes high_water - frozen_cut to the freeze-lag gauge.
  void update_freeze_lag();
  /// Seals the persistence log at the current freeze cut when the seal
  /// cadence has elapsed (`force` ignores the cadence — drain()).
  void maybe_seal(bool force);

  /// Join state for one in-flight diagnosis batch (defined in streaming.cpp).
  struct Batch;
  /// One slot of an in-flight diagnosis batch, handed to a worker.
  struct DiagnosisJob {
    const core::EventInstance* symptom = nullptr;
    std::size_t slot = 0;
    Batch* batch = nullptr;
  };
  void worker_loop();

  const topology::Network& net_;
  StreamingOptions options_;
  obs::FeedHealthMonitor feed_health_;  // must precede normalizer_
  collector::Normalizer normalizer_;
  collector::EventExtractor extractor_;
  collector::RebuiltRouting routing_;
  core::LocationMapper mapper_;
  core::EventStore store_;
  std::unique_ptr<core::RcaEngine> engine_;

  /// Write-ahead persistence (see StreamingOptions::persist_dir); null
  /// when persistence is off. Complete type only in streaming.cpp.
  std::unique_ptr<storage::EventLogWriter> persist_;
  /// Events starting before this are already sealed on disk (resume):
  /// extraction re-derives but does not re-add or re-append them.
  util::TimeSec extract_floor_ = std::numeric_limits<util::TimeSec>::min();
  util::TimeSec last_seal_cut_ = std::numeric_limits<util::TimeSec>::min();
  std::optional<util::TimeSec> resumed_from_;

  /// Worker stage between event ingestion and diagnosis: ingestion (the
  /// caller's thread) produces frozen symptom batches into the bounded
  /// queue; the workers consume and diagnose. Empty when workers <= 1.
  std::unique_ptr<util::BoundedQueue<DiagnosisJob>> jobs_;
  std::vector<std::thread> workers_;

  std::vector<collector::NormalizedRecord> buffer_;  // kept sorted by utc
  util::TimeSec high_water_ = std::numeric_limits<util::TimeSec>::min();
  util::TimeSec frozen_cut_ = std::numeric_limits<util::TimeSec>::min();
  util::TimeSec routing_cut_ = std::numeric_limits<util::TimeSec>::min();
  util::TimeSec last_now_ = std::numeric_limits<util::TimeSec>::min();
  std::size_t diagnose_cursor_ = 0;  // symptoms diagnosed so far (by order)
  std::size_t stored_ = 0;
  std::size_t dropped_late_ = 0;
  std::size_t diagnosed_count_ = 0;
  std::size_t injected_ = 0;

  // Streaming instrumentation (null when no registry is installed).
  obs::Gauge* freeze_lag_gauge_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* batch_seconds_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
};

}  // namespace grca::apps
