// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The CDN service-impairment RCA application (paper §III-B, Fig. 5, Tables
// V/VI): RTT degradations between end-users and CDN servers, diagnosed via
// the spatial model (CDN node -> ingress router -> BGP egress -> OSPF path).
#pragma once

#include "core/diagnosis_graph.h"
#include "core/result_browser.h"

namespace grca::apps::cdn {

/// Application-specific DSL (Table V events + Fig. 5 rules).
std::string_view app_dsl();

/// Knowledge Library + application config, rooted at cdn-rtt-increase.
core::DiagnosisGraph build_graph();

/// Table VI row labels and order.
void configure_browser(core::ResultBrowser& browser);

/// Maps diagnosed primaries onto ground-truth cause labels (e.g. deep
/// layer-1 causes still count as the "Interface flap" row of Table VI).
std::string canonical_cause(const std::string& primary);

}  // namespace grca::apps::cdn
