// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/pipeline.h"

#include "util/thread_pool.h"

namespace grca::apps {

Pipeline::Pipeline(const topology::Network& net,
                   const telemetry::RecordStream& raw,
                   collector::ExtractOptions options,
                   std::vector<topology::RouterId> egress_observers)
    : net_(net),
      index_(collector::Normalizer(net).normalize_stream(raw)),
      routing_(net),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  routing_.replay(index_.all());
  collector::EventExtractor extractor(net, options);
  extractor.extract(index_.all(), store_);
  if (!egress_observers.empty()) {
    extractor.extract_egress_changes(index_.all(), routing_.bgp(),
                                     egress_observers, store_);
  }
}

std::vector<core::Diagnosis> Pipeline::diagnose_all(core::DiagnosisGraph graph,
                                                    unsigned threads) const {
  core::RcaEngine engine(std::move(graph), store_, mapper_);
  return engine.diagnose_all(threads);
}

std::vector<std::vector<core::Diagnosis>> Pipeline::diagnose_apps(
    std::vector<core::DiagnosisGraph> graphs, unsigned threads) const {
  std::vector<std::vector<core::Diagnosis>> out(graphs.size());
  if (threads == 0) threads = util::ThreadPool::default_threads();
  if (threads <= 1 || graphs.size() < 2) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      out[i] = diagnose_all(std::move(graphs[i]), threads);
    }
    return out;
  }
  // Warm once from this thread; the applications then share read-only
  // store/mapper state. Each application runs serially within its task —
  // the fan-out here is across applications.
  store_.warm();
  util::ThreadPool pool(
      static_cast<unsigned>(std::min<std::size_t>(threads, graphs.size())));
  pool.parallel_for(0, graphs.size(), [&](std::size_t i) {
    core::RcaEngine engine(std::move(graphs[i]), store_, mapper_);
    out[i] = engine.diagnose_all();
  });
  return out;
}

core::ResultBrowser::ContextLookup Pipeline::context_lookup() const {
  return [this](const core::Location& where, util::TimeSec from,
                util::TimeSec to) {
    std::vector<std::string> lines;
    for (const core::Location& r :
         mapper_.project(where, core::LocationType::kRouter, from)) {
      for (const collector::NormalizedRecord* rec :
           index_.on_router(r.a, from, to)) {
        lines.push_back(collector::render(*rec));
      }
    }
    return lines;
  };
}

}  // namespace grca::apps
