// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/pipeline.h"

namespace grca::apps {

Pipeline::Pipeline(const topology::Network& net,
                   const telemetry::RecordStream& raw,
                   collector::ExtractOptions options,
                   std::vector<topology::RouterId> egress_observers)
    : net_(net),
      index_(collector::Normalizer(net).normalize_stream(raw)),
      routing_(net),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  routing_.replay(index_.all());
  collector::EventExtractor extractor(net, options);
  extractor.extract(index_.all(), store_);
  if (!egress_observers.empty()) {
    extractor.extract_egress_changes(index_.all(), routing_.bgp(),
                                     egress_observers, store_);
  }
}

core::ResultBrowser::ContextLookup Pipeline::context_lookup() const {
  return [this](const core::Location& where, util::TimeSec from,
                util::TimeSec to) {
    std::vector<std::string> lines;
    for (const core::Location& r :
         mapper_.project(where, core::LocationType::kRouter, from)) {
      for (const collector::NormalizedRecord* rec :
           index_.on_router(r.a, from, to)) {
        lines.push_back(collector::render(*rec));
      }
    }
    return lines;
  };
}

}  // namespace grca::apps
