// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/pipeline.h"

#include "obs/span.h"
#include "util/thread_pool.h"

namespace grca::apps {

namespace {

/// Normalize + index under a stage span (member-init needs an expression).
collector::RecordIndex build_index(const topology::Network& net,
                                   const telemetry::RecordStream& raw,
                                   obs::FeedHealthMonitor& feed_health) {
  obs::ScopedSpan span("normalize");
  return collector::RecordIndex(
      collector::Normalizer(net, &feed_health).normalize_stream(raw));
}

}  // namespace

Pipeline::Pipeline(const topology::Network& net,
                   const telemetry::RecordStream& raw,
                   collector::ExtractOptions options,
                   std::vector<topology::RouterId> egress_observers)
    : net_(net),
      index_(build_index(net, raw, feed_health_)),
      routing_(net),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  {
    obs::ScopedSpan span("routing-replay");
    routing_.replay(index_.all());
  }
  store_.enable_metrics(obs::registry_ptr());
  collector::EventExtractor extractor(net, options);
  {
    obs::ScopedSpan span("extract");
    extractor.extract(index_.all(), store_);
  }
  if (!egress_observers.empty()) {
    obs::ScopedSpan span("extract-egress");
    extractor.extract_egress_changes(index_.all(), routing_.bgp(),
                                     egress_observers, store_);
  }
  // Gap gauges are relative to the end of the archive: a feed that went
  // quiet mid-archive shows up with a large gap here.
  if (!index_.all().empty()) {
    feed_health_.observe_clock(index_.all().back().utc);
  }
  // Sort and intern everything now, while construction is still
  // single-threaded: diagnose_all/diagnose_apps then start from a warm
  // store and the engines' join caches key on interned ids immediately.
  // (Callers adding more events via store() just re-dirty the buckets.)
  store_.warm();
}

Pipeline::Pipeline(const topology::Network& net,
                   const telemetry::RecordStream& raw,
                   std::shared_ptr<const core::EventStoreView> events)
    : net_(net),
      index_(build_index(net, raw, feed_health_)),
      routing_(net),
      external_(std::move(events)),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  {
    obs::ScopedSpan span("routing-replay");
    routing_.replay(index_.all());
  }
  if (!index_.all().empty()) {
    feed_health_.observe_clock(index_.all().back().utc);
  }
  external_->warm();
}

std::vector<core::Diagnosis> Pipeline::diagnose_all(core::DiagnosisGraph graph,
                                                    unsigned threads) const {
  obs::ScopedSpan span("diagnose");
  core::RcaEngine engine(std::move(graph), events(), mapper_);
  return engine.diagnose_all(threads);
}

std::vector<core::Diagnosis> Pipeline::diagnose_selected(
    core::DiagnosisGraph graph, std::span<const std::uint32_t> indices,
    std::vector<core::Location> allowed_locations, unsigned threads) const {
  obs::ScopedSpan span("diagnose");
  core::RcaEngine engine(std::move(graph), events(), mapper_);
  engine.set_location_filter(std::move(allowed_locations));
  return engine.diagnose_indices(indices, threads);
}

std::vector<std::vector<core::Diagnosis>> Pipeline::diagnose_apps(
    std::vector<core::DiagnosisGraph> graphs, unsigned threads) const {
  std::vector<std::vector<core::Diagnosis>> out(graphs.size());
  if (threads == 0) threads = util::ThreadPool::default_threads();
  if (threads <= 1 || graphs.size() < 2) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      out[i] = diagnose_all(std::move(graphs[i]), threads);
    }
    return out;
  }
  // Warm once from this thread; the applications then share read-only
  // store/mapper state. Each application runs serially within its task —
  // the fan-out here is across applications.
  events().warm();
  util::ThreadPool pool(
      static_cast<unsigned>(std::min<std::size_t>(threads, graphs.size())));
  pool.parallel_for(0, graphs.size(), [&](std::size_t i) {
    core::RcaEngine engine(std::move(graphs[i]), events(), mapper_);
    out[i] = engine.diagnose_all();
  });
  return out;
}

core::ResultBrowser::ContextLookup Pipeline::context_lookup() const {
  return [this](const core::Location& where, util::TimeSec from,
                util::TimeSec to) {
    std::vector<std::string> lines;
    for (const core::Location& r :
         mapper_.project(where, core::LocationType::kRouter, from)) {
      for (const collector::NormalizedRecord* rec :
           index_.on_router(r.a, from, to)) {
        lines.push_back(collector::render(*rec));
      }
    }
    return lines;
  };
}

}  // namespace grca::apps
