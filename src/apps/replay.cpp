// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/replay.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include "apps/pipeline.h"
#include "apps/scoring.h"
#include "obs/export.h"
#include "obs/sampling.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace grca::apps {

namespace {

using util::TimeSec;

/// Records handed from a feed shard to the driver, in chunks to amortize
/// the queue synchronization over the per-record hot path.
constexpr std::size_t kChunkRecords = 128;

struct Item {
  const telemetry::RawRecord* raw = nullptr;
  TimeSec arrival = 0;     // scheduled arrival, sim seconds
  std::uint64_t seq = 0;   // emission index: the merge tie-breaker
};

bool item_before(const Item& a, const Item& b) {
  return a.arrival != b.arrival ? a.arrival < b.arrival : a.seq < b.seq;
}

std::string verdict_key(const core::Diagnosis& d) {
  return d.symptom.where.key() + "@" + std::to_string(d.symptom.when.start);
}

}  // namespace

FeedReplayer::FeedReplayer(const topology::Network& net, ReplayOptions options)
    : net_(net), options_(options) {
  if (options_.ingest_threads == 0) options_.ingest_threads = 1;
  if (options_.tick <= 0) {
    throw ConfigError("FeedReplayer: tick must be positive");
  }
  if (options_.shard_queue_chunks == 0) options_.shard_queue_chunks = 1;
}

ReplayReport FeedReplayer::replay(
    const telemetry::RecordStream& records, const core::DiagnosisGraph& graph,
    const std::vector<sim::TruthEntry>* truth,
    const std::function<std::string(const std::string&)>& canonical) {
  ReplayReport report;
  report.conservation.emitted = records.size();

  // ---- Arrival schedule (single-threaded, seed-deterministic) -------------
  // A stable per-source delivery lag plus per-record jitter, drawn in
  // emission order: the schedule — and therefore the merged ingest order —
  // is identical for every ingest thread count and every run.
  util::Rng rng(options_.seed);
  std::array<TimeSec, obs::kSourceCount> source_delay{};
  for (TimeSec& d : source_delay) {
    d = options_.source_lag > 0 ? rng.range(0, options_.source_lag) : 0;
  }
  const std::size_t nshards = options_.ingest_threads;
  std::vector<std::vector<Item>> shards(nshards);
  TimeSec sim0 = std::numeric_limits<TimeSec>::max();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const telemetry::RawRecord& r = records[i];
    TimeSec delay = source_delay[static_cast<std::size_t>(r.source)];
    if (options_.record_jitter > 0) {
      delay += rng.range(0, options_.record_jitter);
    }
    Item item{&r, r.true_utc + delay, i};
    sim0 = std::min(sim0, item.arrival);
    shards[static_cast<std::size_t>(r.source) % nshards].push_back(item);
  }
  for (std::vector<Item>& shard : shards) {
    std::sort(shard.begin(), shard.end(), item_before);
  }

  obs::RegistrySampler sampler;
  core::DiagnosisGraph stream_graph = graph;
  StreamingRca stream(net_, std::move(stream_graph), options_.stream);

  // ---- Feed shards: one delivery thread per shard -------------------------
  using Chunk = std::vector<Item>;
  std::vector<std::unique_ptr<util::BoundedQueue<Chunk>>> queues;
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> pushed;
  for (std::size_t s = 0; s < nshards; ++s) {
    queues.push_back(std::make_unique<util::BoundedQueue<Chunk>>(
        options_.shard_queue_chunks));
    pushed.push_back(std::make_unique<std::atomic<std::size_t>>(0));
  }
  std::vector<std::thread> producers;
  producers.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    producers.emplace_back([&, s] {
      Chunk chunk;
      chunk.reserve(kChunkRecords);
      for (const Item& item : shards[s]) {
        chunk.push_back(item);
        if (chunk.size() == kChunkRecords) {
          pushed[s]->fetch_add(chunk.size(), std::memory_order_relaxed);
          if (!queues[s]->push(std::move(chunk))) return;  // driver gave up
          chunk = Chunk();
          chunk.reserve(kChunkRecords);
        }
      }
      if (!chunk.empty()) {
        pushed[s]->fetch_add(chunk.size(), std::memory_order_relaxed);
        queues[s]->push(std::move(chunk));
      }
      queues[s]->close();
    });
  }
  struct JoinGuard {
    std::vector<std::unique_ptr<util::BoundedQueue<Chunk>>>& queues;
    std::vector<std::thread>& threads;
    ~JoinGuard() {
      for (auto& q : queues) q->close();
      for (std::thread& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } join_guard{queues, producers};

  // ---- Driver: deterministic k-way merge + pacing + tick loop -------------
  struct Head {
    Chunk chunk;
    std::size_t pos = 0;
    bool done = false;
  };
  std::vector<Head> heads(nshards);
  auto refill = [&](std::size_t s) {
    Head& h = heads[s];
    h.chunk.clear();
    h.pos = 0;
    if (!queues[s]->pop(h.chunk) || h.chunk.empty()) h.done = true;
  };
  for (std::size_t s = 0; s < nshards; ++s) refill(s);

  std::vector<std::uint32_t> latency_ns;
  latency_ns.reserve(records.size());
  std::size_t consumed = 0;
  double detection_sum = 0.0;
  auto sample_depth = [&] {
    std::size_t in_flight = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
      in_flight += pushed[s]->load(std::memory_order_relaxed);
    }
    in_flight -= std::min(in_flight, consumed);
    report.queue_high_water = std::max(report.queue_high_water, in_flight);
  };
  auto do_tick = [&](TimeSec now_tick) {
    for (core::Diagnosis& d : stream.advance(now_tick)) {
      TimeSec lat = now_tick - d.symptom.when.start;
      report.detection_max_s = std::max(report.detection_max_s, lat);
      detection_sum += static_cast<double>(lat);
      report.diagnoses.push_back(std::move(d));
    }
    sampler.sample();
    sample_depth();
    ++report.ticks;
  };

  const auto wall0 = std::chrono::steady_clock::now();
  TimeSec next_tick = sim0 == std::numeric_limits<TimeSec>::max()
                          ? 0
                          : sim0 + options_.tick;
  while (true) {
    std::size_t best = nshards;
    for (std::size_t s = 0; s < nshards; ++s) {
      if (heads[s].done) continue;
      if (best == nshards ||
          item_before(heads[s].chunk[heads[s].pos],
                      heads[best].chunk[heads[best].pos])) {
        best = s;
      }
    }
    if (best == nshards) break;  // every shard delivered and drained
    Item item = heads[best].chunk[heads[best].pos];
    if (++heads[best].pos == heads[best].chunk.size()) {
      refill(best);
      sample_depth();
    }
    while (item.arrival >= next_tick) {
      do_tick(next_tick);
      next_tick += options_.tick;
    }
    if (options_.rate > 0) {
      std::this_thread::sleep_until(
          wall0 + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(item.arrival - sim0) /
                          options_.rate)));
    }
    const auto t0 = std::chrono::steady_clock::now();
    stream.ingest(*item.raw);
    const auto t1 = std::chrono::steady_clock::now();
    latency_ns.push_back(static_cast<std::uint32_t>(std::min<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count(),
        std::numeric_limits<std::uint32_t>::max())));
    ++consumed;
  }
  std::size_t drained_at = report.diagnoses.size();
  for (core::Diagnosis& d : stream.drain()) {
    report.diagnoses.push_back(std::move(d));
  }
  (void)drained_at;
  sampler.sample();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
  report.records_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(records.size()) / report.wall_seconds
          : 0.0;
  report.diagnoses_count = report.diagnoses.size();
  if (!report.diagnoses.empty() && detection_sum > 0.0) {
    report.detection_mean_s = detection_sum / report.diagnoses_count;
  }

  // ---- Ingest latency percentiles ----------------------------------------
  if (!latency_ns.empty()) {
    std::vector<std::uint32_t> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    auto at = [&](double q) {
      std::size_t i = static_cast<std::size_t>(q * (sorted.size() - 1));
      return static_cast<double>(sorted[i]) / 1000.0;
    };
    report.ingest_p50_us = at(0.50);
    report.ingest_p99_us = at(0.99);
    report.ingest_max_us = static_cast<double>(sorted.back()) / 1000.0;
  }

  // ---- Conservation ------------------------------------------------------
  report.conservation.stored = stream.stored();
  report.conservation.rejected = stream.rejected();
  report.conservation.dropped_late = stream.dropped_late();
  const obs::FeedHealthMonitor& health = stream.feed_health();
  report.conservation.feed_records = health.total_records();
  report.conservation.feed_late_drops = health.total_late_drops();
  for (const obs::FeedHealthMonitor::Status& s : health.status()) {
    report.conservation.feed_rejected += s.rejected;
    report.sources.push_back(
        SourceReplayStats{s.source, s.records, s.rejected, s.late_drops});
  }
  report.gauge_peaks = sampler.gauge_peaks();

  // ---- Ground-truth conservation: coverage + batch verdict diff ----------
  if (truth != nullptr) {
    TruthCheck check;
    check.truth_total = truth->size();
    Score score = score_diagnoses(report.diagnoses, *truth, canonical);
    check.matched = score.matched;
    check.correct = score.correct;

    // The batch reference runs with instrumentation disabled so its own
    // collector pass does not double-count into the live registry.
    const auto batch0 = std::chrono::steady_clock::now();
    std::vector<core::Diagnosis> batch;
    {
      obs::ScopedRegistry off(nullptr);
      Pipeline pipeline(net_, records, options_.stream.extract);
      batch = pipeline.diagnose_all(graph, options_.batch_threads);
    }
    check.batch_wall_seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - batch0)
                                   .count();
    std::map<std::string, std::string> batch_verdicts;
    for (const core::Diagnosis& d : batch) {
      batch_verdicts.emplace(verdict_key(d), d.primary());
    }
    std::size_t streaming_matched = 0;
    for (const core::Diagnosis& d : report.diagnoses) {
      auto it = batch_verdicts.find(verdict_key(d));
      if (it == batch_verdicts.end()) {
        ++check.verdicts.streaming_only;
        continue;
      }
      ++check.verdicts.compared;
      ++streaming_matched;
      if (it->second != d.primary()) ++check.verdicts.mismatched;
    }
    check.verdicts.batch_only = batch_verdicts.size() >= streaming_matched
                                    ? batch_verdicts.size() - streaming_matched
                                    : 0;
    report.truth = std::move(check);
  }
  return report;
}

// ---- Rendering -------------------------------------------------------------

std::string render_json(const ReplayReport& report) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n";
  out << "  \"records\": " << report.conservation.emitted << ",\n";
  out << "  \"wall_seconds\": " << report.wall_seconds << ",\n";
  out << "  \"records_per_sec\": " << report.records_per_sec << ",\n";
  out << "  \"records_per_min\": " << report.records_per_min() << ",\n";
  out << "  \"ticks\": " << report.ticks << ",\n";
  out << "  \"diagnoses\": " << report.diagnoses_count << ",\n";
  out << "  \"ingest_latency_us\": {\"p50\": " << report.ingest_p50_us
      << ", \"p99\": " << report.ingest_p99_us
      << ", \"max\": " << report.ingest_max_us << "},\n";
  out << "  \"queue_high_water\": " << report.queue_high_water << ",\n";
  out << "  \"detection_latency_s\": {\"mean\": " << report.detection_mean_s
      << ", \"max\": " << report.detection_max_s << "},\n";
  const ConservationCheck& c = report.conservation;
  out << "  \"conservation\": {\"emitted\": " << c.emitted
      << ", \"stored\": " << c.stored << ", \"rejected\": " << c.rejected
      << ", \"dropped_late\": " << c.dropped_late
      << ", \"unaccounted\": " << c.unaccounted()
      << ", \"feed_records\": " << c.feed_records
      << ", \"feed_rejected\": " << c.feed_rejected
      << ", \"feed_late_drops\": " << c.feed_late_drops
      << ", \"conserved\": " << (c.conserved() ? "true" : "false") << "},\n";
  out << "  \"sources\": [";
  for (std::size_t i = 0; i < report.sources.size(); ++i) {
    const SourceReplayStats& s = report.sources[i];
    if (i) out << ", ";
    out << "{\"source\": \""
        << obs::json_escape(std::string(telemetry::to_string(s.source)))
        << "\", \"records\": " << s.records << ", \"rejected\": " << s.rejected
        << ", \"late_drops\": " << s.late_drops << "}";
  }
  out << "],\n";
  if (report.truth) {
    const TruthCheck& t = *report.truth;
    out << "  \"truth\": {\"total\": " << t.truth_total
        << ", \"matched\": " << t.matched << ", \"correct\": " << t.correct
        << ", \"batch_wall_seconds\": " << t.batch_wall_seconds
        << ", \"verdicts\": {\"compared\": " << t.verdicts.compared
        << ", \"mismatched\": " << t.verdicts.mismatched
        << ", \"streaming_only\": " << t.verdicts.streaming_only
        << ", \"batch_only\": " << t.verdicts.batch_only
        << ", \"identical\": " << (t.verdicts.identical() ? "true" : "false")
        << "}, \"passed\": " << (t.passed() ? "true" : "false") << "},\n";
  }
  out << "  \"gauge_peaks\": {";
  bool first = true;
  for (const auto& [name, peak] : report.gauge_peaks) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << obs::json_escape(name) << "\": " << peak;
  }
  out << "},\n";
  out << "  \"passed\": " << (report.passed() ? "true" : "false") << "\n";
  out << "}\n";
  return out.str();
}

std::string render_text(const ReplayReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "replayed %zu records in %.2f s (%.0f records/s, %.2fM "
                "records/min), %zu ticks\n",
                report.conservation.emitted, report.wall_seconds,
                report.records_per_sec, report.records_per_min() / 1e6,
                report.ticks);
  out += line;
  std::snprintf(line, sizeof(line),
                "ingest latency: p50 %.2f us  p99 %.2f us  max %.2f us; "
                "shard-queue high-water %zu records\n",
                report.ingest_p50_us, report.ingest_p99_us,
                report.ingest_max_us, report.queue_high_water);
  out += line;
  std::snprintf(line, sizeof(line),
                "diagnosed %zu symptoms; detection latency mean %.0f s, "
                "max %lld s\n",
                report.diagnoses_count, report.detection_mean_s,
                static_cast<long long>(report.detection_max_s));
  out += line;

  util::TextTable sources({"Source", "Records", "Rejected", "Late drops"});
  for (const SourceReplayStats& s : report.sources) {
    sources.add_row({std::string(telemetry::to_string(s.source)),
                     std::to_string(s.records), std::to_string(s.rejected),
                     std::to_string(s.late_drops)});
  }
  out += sources.render("per-source feed health");

  const ConservationCheck& c = report.conservation;
  std::snprintf(line, sizeof(line),
                "conservation: emitted %zu = stored %zu + rejected %zu + "
                "dropped-late %zu (unaccounted %lld) %s\n",
                c.emitted, c.stored, c.rejected, c.dropped_late,
                static_cast<long long>(c.unaccounted()),
                c.conserved() ? "OK" : "VIOLATED");
  out += line;
  if (!c.conserved()) {
    std::snprintf(line, sizeof(line),
                  "  registry view: feed_records %llu (want stored+late %zu), "
                  "feed_rejected %llu, feed_late_drops %llu\n",
                  static_cast<unsigned long long>(c.feed_records),
                  c.stored + c.dropped_late,
                  static_cast<unsigned long long>(c.feed_rejected),
                  static_cast<unsigned long long>(c.feed_late_drops));
    out += line;
  }
  if (report.truth) {
    const TruthCheck& t = *report.truth;
    std::snprintf(line, sizeof(line),
                  "ground truth: %zu/%zu symptoms matched by a streaming "
                  "diagnosis (%zu with the correct cause)\n",
                  t.matched, t.truth_total, t.correct);
    out += line;
    std::snprintf(
        line, sizeof(line),
        "batch diff: %zu verdicts compared, %zu mismatched, %zu "
        "streaming-only, %zu batch-only (batch took %.2f s) %s\n",
        t.verdicts.compared, t.verdicts.mismatched, t.verdicts.streaming_only,
        t.verdicts.batch_only, t.batch_wall_seconds,
        t.verdicts.identical() ? "IDENTICAL" : "DIVERGED");
    out += line;
  }
  std::snprintf(line, sizeof(line), "replay gate: %s\n",
                report.passed() ? "PASSED" : "FAILED");
  out += line;
  return out;
}

}  // namespace grca::apps
