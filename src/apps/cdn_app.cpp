// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/cdn_app.h"

#include "core/knowledge_library.h"
#include "core/rule_dsl.h"

namespace grca::apps::cdn {

namespace {

constexpr std::string_view kAppDsl = R"DSL(
event cdn-rtt-increase {
  location cdn-client
  source cdn-monitor
  retrieval cdnmon-rtt
  desc "increase in end-to-end round trip time between end-users and CDN servers"
}
event cdn-tput-drop {
  location cdn-client
  source cdn-monitor
  retrieval cdnmon-tput
  desc "decrease in average download throughput"
}
event cdn-server-issue {
  location cdn-node
  source server-logs
  retrieval serverlog-load
  desc "CDN server load is high"
}
event cdn-policy-change {
  location cdn-node
  source server-logs
  retrieval serverlog-policy
  desc "CDN assignment policy changed"
}

rule cdn-rtt-increase -> cdn-policy-change {
  priority 190
  symptom start-start 300 5
  diagnostic start-end 5 300
  join cdn-node
}
rule cdn-rtt-increase -> cdn-server-issue {
  priority 185
  symptom start-start 300 5
  diagnostic start-end 5 300
  join cdn-node
}
rule cdn-rtt-increase -> bgp-egress-change {
  priority 170
  symptom start-start 120 5
  diagnostic start-end 5 60
  join router
}
rule cdn-rtt-increase -> interface-flap {
  priority 160
  symptom start-start 60 5
  diagnostic start-end 5 15
  join logical-link
}
rule cdn-rtt-increase -> link-loss {
  priority 155
  symptom start-start 330 30
  diagnostic start-end 60 300
  join logical-link
}
rule cdn-rtt-increase -> link-congestion {
  priority 150
  symptom start-start 330 30
  diagnostic start-end 60 300
  join logical-link
}
rule cdn-rtt-increase -> ospf-reconvergence {
  priority 140
  symptom start-start 60 5
  diagnostic start-end 5 60
  join logical-link
}

graph {
  root cdn-rtt-increase
}
)DSL";

}  // namespace

std::string_view app_dsl() { return kAppDsl; }

core::DiagnosisGraph build_graph() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  core::load_dsl(kAppDsl, graph);
  graph.validate();
  return graph;
}

void configure_browser(core::ResultBrowser& browser) {
  browser.set_display_name("cdn-policy-change", "CDN assignment policy change");
  browser.set_display_name("cdn-server-issue", "CDN server issue");
  browser.set_display_name("bgp-egress-change",
                           "Egress Change due to Inter-domain routing change");
  browser.set_display_name("link-congestion", "Link Congestions");
  browser.set_display_name("link-loss", "Link Loss");
  browser.set_display_name("interface-flap", "Interface flap");
  browser.set_display_name("ospf-reconvergence", "OSPF re-convergence");
  browser.set_display_name("unknown", "Outside of our network (Unknown)");
  browser.set_display_order({"cdn-policy-change", "bgp-egress-change",
                             "link-congestion", "link-loss", "interface-flap",
                             "ospf-reconvergence", "unknown"});
}

std::string canonical_cause(const std::string& primary) {
  // Deeper explanations of a path flap still belong to Table VI's
  // "Interface flap" row.
  if (primary == "sonet-restoration" ||
      primary == "optical-restoration-fast" ||
      primary == "optical-restoration-regular" ||
      primary == "line-protocol-flap") {
    return "interface-flap";
  }
  if (primary == "cmd-cost-in" || primary == "cmd-cost-out") {
    return "ospf-reconvergence";
  }
  return primary;
}

}  // namespace grca::apps::cdn
