// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/streaming.h"

#include <algorithm>
#include <chrono>

#include "obs/span.h"
#include "storage/event_log.h"

namespace grca::apps {

using collector::NormalizedRecord;
using util::TimeSec;

StreamingRca::StreamingRca(const topology::Network& net,
                           core::DiagnosisGraph graph,
                           StreamingOptions options)
    : net_(net),
      options_(options),
      normalizer_(net, &feed_health_),
      extractor_(net, options.extract),
      routing_(net),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  if (options_.extract.flap_pair_window + 120 > options_.freeze_horizon) {
    throw ConfigError(
        "StreamingRca: freeze_horizon must exceed the flap pairing window "
        "(+2 min slack), or flaps spanning the horizon would be lost");
  }
  // Resume before metrics enable so reloaded events are not double-counted
  // as fresh extractions, and before the engine exists so the store is
  // settled when diagnosis state initializes.
  if (!options_.persist_dir.empty()) {
    storage::SealedLoad sealed =
        storage::load_sealed_events(options_.persist_dir);
    // The crash-torn WAL is discarded: everything past the last seal is
    // re-derived from the re-fed stream (extract_floor_ gates duplicates).
    persist_ = std::make_unique<storage::EventLogWriter>(
        options_.persist_dir, /*discard_wal=*/true, options_.persist_format);
    if (sealed.watermark) {
      for (core::EventInstance& e : sealed.events) store_.add(std::move(e));
      store_.warm();
      extract_floor_ = *sealed.watermark;
      last_seal_cut_ = *sealed.watermark;
      resumed_from_ = sealed.watermark;
    }
  }
  store_.enable_metrics(obs::registry_ptr());
  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    freeze_lag_gauge_ = &reg->gauge("grca_streaming_freeze_lag_seconds");
    queue_depth_gauge_ = &reg->gauge("grca_streaming_queue_depth");
    batch_seconds_ = &reg->histogram("grca_streaming_batch_seconds");
    batch_size_ = &reg->histogram(
        "grca_streaming_batch_size",
        {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  }
  engine_ = std::make_unique<core::RcaEngine>(std::move(graph), store_,
                                              mapper_);
  if (resumed_from_) {
    // Position the diagnosis cursor exactly where the killed incarnation
    // left off: at seal time (watermark W) every symptom starting before
    // W - settle had been diagnosed — the seal runs after diagnose_ready
    // within the same advance().
    auto symptoms = store_.all(engine_->graph().root());
    TimeSec ready = *resumed_from_ - options_.settle;
    while (diagnose_cursor_ < symptoms.size() &&
           symptoms[diagnose_cursor_].when.start < ready) {
      ++diagnose_cursor_;
    }
  }
  if (options_.workers > 1) {
    jobs_ = std::make_unique<util::BoundedQueue<DiagnosisJob>>(
        std::size_t{4} * options_.workers);
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

StreamingRca::~StreamingRca() {
  if (jobs_) jobs_->close();
  for (std::thread& t : workers_) t.join();
}

void StreamingRca::ingest(const telemetry::RawRecord& raw) {
  NormalizedRecord record;
  if (!normalizer_.normalize(raw, record)) return;  // unknown device
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  if ((frozen_cut_ != kNever && record.utc <= frozen_cut_) ||
      (high_water_ != kNever &&
       record.utc < high_water_ - options_.max_skew)) {
    ++dropped_late_;  // arrived after its region was finalized
    feed_health_.on_late_drop(record.source);
    return;
  }
  high_water_ = std::max(high_water_, record.utc);
  // Keep the buffer sorted; most records arrive nearly in order, so the
  // insertion point is near the back.
  auto pos = std::upper_bound(buffer_.begin(), buffer_.end(), record.utc,
                              [](TimeSec t, const NormalizedRecord& r) {
                                return t < r.utc;
                              });
  buffer_.insert(pos, std::move(record));
  ++stored_;
}

void StreamingRca::freeze_until(TimeSec new_cut) {
  if (new_cut <= frozen_cut_) return;
  // Extraction context: records somewhat before the region (so transitions
  // and pairings that began earlier resolve) through everything buffered.
  // On the very first freeze nothing has been finalized, so the whole
  // buffer is both context and freezable region.
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  TimeSec context_from =
      frozen_cut_ == kNever
          ? kNever
          : frozen_cut_ - options_.extract.flap_pair_window - 600;
  auto first = std::lower_bound(buffer_.begin(), buffer_.end(), context_from,
                                [](const NormalizedRecord& r, TimeSec t) {
                                  return r.utc < t;
                                });
  core::EventStore scratch;
  if (first != buffer_.end()) {
    extractor_.extract(
        std::span<const NormalizedRecord>(
            &*first, static_cast<std::size_t>(buffer_.end() - first)),
        scratch);
  }
  // extract_floor_ additionally masks the region a resumed engine already
  // reloaded from sealed segments — re-extracted twins of persisted events
  // must not re-enter the store (or the log).
  TimeSec effective_from =
      std::max({frozen_cut_, context_from, extract_floor_});
  for (const std::string& name : scratch.event_names()) {
    for (const core::EventInstance& e : scratch.all(name)) {
      if (e.when.start >= effective_from && e.when.start < new_cut) {
        store_.add(e);
        if (persist_) persist_->append(e);
      }
    }
  }
  // Routing follows the freeze cut: monitor records in the frozen region are
  // final and strictly ordered. Because every replayed change time is >= the
  // previous routing_cut_ — and all diagnosed symptoms are older than that
  // cut — replay only appends routing epochs: epoch_at(t) for already-
  // diagnosed times never renumbers, so the engine's join cache stays valid
  // across batches without invalidation.
  auto route_first = std::lower_bound(
      buffer_.begin(), buffer_.end(), routing_cut_,
      [](const NormalizedRecord& r, TimeSec t) { return r.utc < t; });
  auto route_last = std::lower_bound(
      buffer_.begin(), buffer_.end(), new_cut,
      [](const NormalizedRecord& r, TimeSec t) { return r.utc < t; });
  if (route_first < route_last) {
    routing_.replay(std::span<const NormalizedRecord>(
        &*route_first, static_cast<std::size_t>(route_last - route_first)));
  }
  routing_cut_ = new_cut;
  frozen_cut_ = new_cut;
  // Trim records that can no longer contribute to any future extraction.
  TimeSec keep_from =
      frozen_cut_ - options_.extract.flap_pair_window - 2 * 600;
  auto keep = std::lower_bound(buffer_.begin(), buffer_.end(), keep_from,
                               [](const NormalizedRecord& r, TimeSec t) {
                                 return r.utc < t;
                               });
  buffer_.erase(buffer_.begin(), keep);
}

/// Join state for one batch pushed through the worker queue.
struct StreamingRca::Batch {
  std::vector<core::Diagnosis> results;
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr error;
};

void StreamingRca::worker_loop() {
  DiagnosisJob job;
  while (jobs_->pop(job)) {
    std::exception_ptr error;
    try {
      job.batch->results[job.slot] = engine_->diagnose(*job.symptom);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock(job.batch->mutex);
    if (error && !job.batch->error) job.batch->error = error;
    if (--job.batch->remaining == 0) job.batch->done.notify_all();
  }
}

std::vector<core::Diagnosis> StreamingRca::diagnose_ready(TimeSec ready_cut) {
  auto t0 = std::chrono::steady_clock::now();
  auto symptoms = store_.all(engine_->graph().root());
  std::size_t first = diagnose_cursor_;
  while (diagnose_cursor_ < symptoms.size() &&
         symptoms[diagnose_cursor_].when.start < ready_cut) {
    ++diagnose_cursor_;
  }
  const std::size_t count = diagnose_cursor_ - first;
  diagnosed_count_ += count;
  if (batch_size_) batch_size_->observe(static_cast<double>(count));
  auto record_batch_time = [&] {
    if (batch_seconds_) {
      batch_seconds_->observe(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
    }
  };
  if (!jobs_ || count == 0) {
    std::vector<core::Diagnosis> out;
    out.reserve(count);
    for (std::size_t i = first; i < diagnose_cursor_; ++i) {
      out.push_back(engine_->diagnose(symptoms[i]));
    }
    record_batch_time();
    return out;
  }
  // Parallel stage: the store is frozen for the duration of the batch (the
  // next ingest/freeze happens only after this returns), so workers see a
  // read-only store. Pre-sort any dirty buckets from this thread first.
  store_.warm();
  Batch batch;
  batch.results.resize(count);
  batch.remaining = count;
  for (std::size_t i = 0; i < count; ++i) {
    jobs_->push(DiagnosisJob{&symptoms[first + i], i, &batch});
  }
  // Depth right after the producer finished: how far the workers are
  // behind at the moment the batch is fully enqueued.
  if (queue_depth_gauge_) {
    queue_depth_gauge_->set(static_cast<double>(jobs_->size()));
  }
  std::unique_lock lock(batch.mutex);
  batch.done.wait(lock, [&] { return batch.remaining == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
  if (queue_depth_gauge_) queue_depth_gauge_->set(0.0);
  record_batch_time();
  return std::move(batch.results);
}

std::vector<core::Diagnosis> StreamingRca::advance(TimeSec now) {
  if (now < last_now_) {
    throw StateError("StreamingRca::advance: clock moved backwards (" +
                     std::to_string(now) + " after " +
                     std::to_string(last_now_) + ")");
  }
  last_now_ = now;
  {
    obs::ScopedSpan span("stream-freeze");
    freeze_until(now - options_.freeze_horizon);
  }
  update_freeze_lag();
  feed_health_.observe_clock(now);
  std::vector<core::Diagnosis> out;
  {
    obs::ScopedSpan span("stream-diagnose");
    out = diagnose_ready(frozen_cut_ - options_.settle);
  }
  // Seal only after the diagnosis pass: the resume logic depends on every
  // symptom older than watermark - settle having been diagnosed by the
  // time the watermark hits disk.
  maybe_seal(/*force=*/false);
  return out;
}

void StreamingRca::inject(core::EventInstance instance) {
  if (instance.name == engine_->graph().root()) {
    throw ConfigError(
        "StreamingRca::inject: cannot inject instances of the symptom "
        "root '" +
        instance.name + "' (the diagnosis cursor owns that bucket)");
  }
  store_.add(std::move(instance));
  ++injected_;
}

std::vector<core::Diagnosis> StreamingRca::drain() {
  if (high_water_ == std::numeric_limits<TimeSec>::min()) return {};
  {
    obs::ScopedSpan span("stream-freeze");
    freeze_until(high_water_ + 1);
  }
  update_freeze_lag();
  std::vector<core::Diagnosis> out;
  {
    obs::ScopedSpan span("stream-diagnose");
    out = diagnose_ready(std::numeric_limits<TimeSec>::max());
  }
  maybe_seal(/*force=*/true);
  return out;
}

void StreamingRca::maybe_seal(bool force) {
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  if (!persist_ || frozen_cut_ == kNever) return;
  if (!force) {
    // Establish the cadence baseline on the first freeze instead of
    // writing an empty segment at stream start.
    if (last_seal_cut_ == kNever) {
      last_seal_cut_ = frozen_cut_;
      return;
    }
    if (frozen_cut_ - last_seal_cut_ < options_.persist_seal_every) return;
  }
  // Nothing new and no watermark progress: a seal would only add an empty
  // segment carrying information already on disk (keeps drain idempotent).
  if (persist_->pending() == 0 && last_seal_cut_ == frozen_cut_) return;
  persist_->seal(frozen_cut_);
  last_seal_cut_ = frozen_cut_;
}

void StreamingRca::update_freeze_lag() {
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  if (freeze_lag_gauge_ && high_water_ != kNever && frozen_cut_ != kNever) {
    freeze_lag_gauge_->set(
        static_cast<double>(std::max<TimeSec>(0, high_water_ - frozen_cut_)));
  }
}

}  // namespace grca::apps
