// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "apps/streaming.h"

#include <algorithm>

namespace grca::apps {

using collector::NormalizedRecord;
using util::TimeSec;

StreamingRca::StreamingRca(const topology::Network& net,
                           core::DiagnosisGraph graph,
                           StreamingOptions options)
    : net_(net),
      options_(options),
      normalizer_(net),
      extractor_(net, options.extract),
      routing_(net),
      mapper_(net, routing_.ospf(), routing_.bgp()) {
  if (options_.extract.flap_pair_window + 120 > options_.freeze_horizon) {
    throw ConfigError(
        "StreamingRca: freeze_horizon must exceed the flap pairing window "
        "(+2 min slack), or flaps spanning the horizon would be lost");
  }
  engine_ = std::make_unique<core::RcaEngine>(std::move(graph), store_,
                                              mapper_);
}

void StreamingRca::ingest(const telemetry::RawRecord& raw) {
  NormalizedRecord record;
  if (!normalizer_.normalize(raw, record)) return;  // unknown device
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  if ((frozen_cut_ != kNever && record.utc <= frozen_cut_) ||
      (high_water_ != kNever &&
       record.utc < high_water_ - options_.max_skew)) {
    ++dropped_late_;  // arrived after its region was finalized
    return;
  }
  high_water_ = std::max(high_water_, record.utc);
  // Keep the buffer sorted; most records arrive nearly in order, so the
  // insertion point is near the back.
  auto pos = std::upper_bound(buffer_.begin(), buffer_.end(), record.utc,
                              [](TimeSec t, const NormalizedRecord& r) {
                                return t < r.utc;
                              });
  buffer_.insert(pos, std::move(record));
}

void StreamingRca::freeze_until(TimeSec new_cut) {
  if (new_cut <= frozen_cut_) return;
  // Extraction context: records somewhat before the region (so transitions
  // and pairings that began earlier resolve) through everything buffered.
  // On the very first freeze nothing has been finalized, so the whole
  // buffer is both context and freezable region.
  constexpr TimeSec kNever = std::numeric_limits<TimeSec>::min();
  TimeSec context_from =
      frozen_cut_ == kNever
          ? kNever
          : frozen_cut_ - options_.extract.flap_pair_window - 600;
  auto first = std::lower_bound(buffer_.begin(), buffer_.end(), context_from,
                                [](const NormalizedRecord& r, TimeSec t) {
                                  return r.utc < t;
                                });
  core::EventStore scratch;
  if (first != buffer_.end()) {
    extractor_.extract(
        std::span<const NormalizedRecord>(
            &*first, static_cast<std::size_t>(buffer_.end() - first)),
        scratch);
  }
  TimeSec effective_from = std::max(frozen_cut_, context_from);
  for (const std::string& name : scratch.event_names()) {
    for (const core::EventInstance& e : scratch.all(name)) {
      if (e.when.start >= effective_from && e.when.start < new_cut) {
        store_.add(e);
      }
    }
  }
  // Routing follows the freeze cut: monitor records in the frozen region are
  // final and strictly ordered.
  auto route_first = std::lower_bound(
      buffer_.begin(), buffer_.end(), routing_cut_,
      [](const NormalizedRecord& r, TimeSec t) { return r.utc < t; });
  auto route_last = std::lower_bound(
      buffer_.begin(), buffer_.end(), new_cut,
      [](const NormalizedRecord& r, TimeSec t) { return r.utc < t; });
  if (route_first < route_last) {
    routing_.replay(std::span<const NormalizedRecord>(
        &*route_first, static_cast<std::size_t>(route_last - route_first)));
  }
  routing_cut_ = new_cut;
  frozen_cut_ = new_cut;
  // Trim records that can no longer contribute to any future extraction.
  TimeSec keep_from =
      frozen_cut_ - options_.extract.flap_pair_window - 2 * 600;
  auto keep = std::lower_bound(buffer_.begin(), buffer_.end(), keep_from,
                               [](const NormalizedRecord& r, TimeSec t) {
                                 return r.utc < t;
                               });
  buffer_.erase(buffer_.begin(), keep);
}

std::vector<core::Diagnosis> StreamingRca::diagnose_ready(TimeSec ready_cut) {
  std::vector<core::Diagnosis> out;
  auto symptoms = store_.all(engine_->graph().root());
  while (diagnose_cursor_ < symptoms.size() &&
         symptoms[diagnose_cursor_].when.start < ready_cut) {
    out.push_back(engine_->diagnose(symptoms[diagnose_cursor_]));
    ++diagnose_cursor_;
    ++diagnosed_count_;
  }
  return out;
}

std::vector<core::Diagnosis> StreamingRca::advance(TimeSec now) {
  freeze_until(now - options_.freeze_horizon);
  return diagnose_ready(frozen_cut_ - options_.settle);
}

std::vector<core::Diagnosis> StreamingRca::drain() {
  if (high_water_ == std::numeric_limits<TimeSec>::min()) return {};
  freeze_until(high_water_ + 1);
  return diagnose_ready(std::numeric_limits<TimeSec>::max());
}

}  // namespace grca::apps
