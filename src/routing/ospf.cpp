// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "routing/ospf.h"

#include <algorithm>
#include <queue>

namespace grca::routing {

using topology::LogicalLinkId;
using topology::RouterId;

OspfSim::OspfSim(const topology::Network& net) : net_(net) {
  history_.resize(net.links().size());
  for (const topology::LogicalLink& l : net.links()) {
    history_[l.id.value()].emplace_back(
        std::numeric_limits<util::TimeSec>::min(), l.ospf_weight);
  }
}

void OspfSim::set_weight(LogicalLinkId link, util::TimeSec time,
                         int new_weight) {
  auto& hist = history_.at(link.value());
  if (time < hist.back().first) {
    throw ConfigError("OspfSim: weight changes must be time-ordered");
  }
  if (new_weight != kDown && new_weight != kCostedOut && new_weight <= 0) {
    throw ConfigError("OspfSim: invalid weight " + std::to_string(new_weight));
  }
  int old = hist.back().second;
  hist.emplace_back(time, new_weight);
  log_.push_back(WeightChange{time, link, old, new_weight});
  // Maintain the sorted distinct change instants eagerly. The common case
  // (times arrive globally non-decreasing) appends; a change at or before an
  // already recorded instant renumbers later epochs, so the generation bumps
  // to invalidate every epoch number handed out so far.
  auto pos = std::lower_bound(epoch_times_.begin(), epoch_times_.end(), time);
  if (pos == epoch_times_.end()) {
    epoch_times_.push_back(time);
  } else {
    ++epoch_generation_;
    if (*pos != time) epoch_times_.insert(pos, time);
  }
  std::lock_guard lock(cache_mutex_);
  spf_cache_.clear();
}

std::shared_ptr<const OspfSim::SpfResult> OspfSim::run_spf(
    RouterId src, util::TimeSec time) const {
  std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) | epoch_at(time);
  {
    std::lock_guard lock(cache_mutex_);
    if (cache_enabled_) {
      auto it = spf_cache_.find(key);
      if (it != spf_cache_.end()) return it->second;
    }
  }
  // Dijkstra runs unlocked: concurrent misses on the same key duplicate the
  // computation but stay correct (last insert wins).
  auto result = std::make_shared<SpfResult>(compute_spf(src, time));
  std::lock_guard lock(cache_mutex_);
  if (cache_enabled_) {
    if (spf_cache_.size() >= 8192) spf_cache_.clear();  // crude size bound
    spf_cache_.emplace(key, result);
  }
  return result;
}

int OspfSim::weight_at(LogicalLinkId link, util::TimeSec time) const {
  const auto& hist = history_.at(link.value());
  // Last entry with entry.time <= time. First entry is at -inf, so the
  // bound is always found.
  auto it = std::upper_bound(
      hist.begin(), hist.end(), time,
      [](util::TimeSec t, const auto& e) { return t < e.first; });
  return std::prev(it)->second;
}

OspfSim::SpfResult OspfSim::compute_spf(RouterId src,
                                        util::TimeSec time) const {
  const std::size_t n = net_.routers().size();
  SpfResult res;
  res.dist.assign(n, kUnreachable);
  res.pred_links.resize(n);
  using Item = std::pair<int, std::uint32_t>;  // (distance, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  res.dist[src.value()] = 0;
  heap.emplace(0, src.value());
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > res.dist[u]) continue;
    for (LogicalLinkId l : net_.links_of_router(RouterId(u))) {
      if (!usable_at(l, time)) continue;
      int w = weight_at(l, time);
      RouterId v = net_.link_peer(l, RouterId(u));
      int nd = d + w;
      if (nd < res.dist[v.value()]) {
        res.dist[v.value()] = nd;
        res.pred_links[v.value()] = {l};
        heap.emplace(nd, v.value());
      } else if (nd == res.dist[v.value()]) {
        // Equal-cost predecessor: remember every ECMP incoming link.
        auto& preds = res.pred_links[v.value()];
        if (std::find(preds.begin(), preds.end(), l) == preds.end()) {
          preds.push_back(l);
        }
      }
    }
  }
  return res;
}

std::optional<int> OspfSim::distance(RouterId src, RouterId dst,
                                     util::TimeSec time) const {
  std::shared_ptr<const SpfResult> res_ptr = run_spf(src, time);
  const SpfResult& res = *res_ptr;
  int d = res.dist[dst.value()];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::vector<RouterId> OspfSim::routers_on_paths(RouterId src, RouterId dst,
                                                util::TimeSec time) const {
  std::shared_ptr<const SpfResult> res_ptr = run_spf(src, time);
  const SpfResult& res = *res_ptr;
  if (res.dist[dst.value()] == kUnreachable) return {};
  // Walk the ECMP predecessor DAG backwards from dst.
  std::vector<bool> seen(net_.routers().size(), false);
  std::vector<RouterId> out, stack = {dst};
  seen[dst.value()] = true;
  while (!stack.empty()) {
    RouterId r = stack.back();
    stack.pop_back();
    out.push_back(r);
    for (LogicalLinkId l : res.pred_links[r.value()]) {
      RouterId p = net_.link_peer(l, r);
      if (!seen[p.value()]) {
        seen[p.value()] = true;
        stack.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LogicalLinkId> OspfSim::links_on_paths(RouterId src, RouterId dst,
                                                   util::TimeSec time) const {
  std::shared_ptr<const SpfResult> res_ptr = run_spf(src, time);
  const SpfResult& res = *res_ptr;
  if (res.dist[dst.value()] == kUnreachable) return {};
  std::vector<bool> seen(net_.routers().size(), false);
  std::vector<LogicalLinkId> out;
  std::vector<RouterId> stack = {dst};
  seen[dst.value()] = true;
  while (!stack.empty()) {
    RouterId r = stack.back();
    stack.pop_back();
    for (LogicalLinkId l : res.pred_links[r.value()]) {
      out.push_back(l);
      RouterId p = net_.link_peer(l, r);
      if (!seen[p.value()]) {
        seen[p.value()] = true;
        stack.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::vector<RouterId>> OspfSim::paths(RouterId src, RouterId dst,
                                                  util::TimeSec time,
                                                  std::size_t max_paths) const {
  std::shared_ptr<const SpfResult> res_ptr = run_spf(src, time);
  const SpfResult& res = *res_ptr;
  std::vector<std::vector<RouterId>> out;
  if (res.dist[dst.value()] == kUnreachable) return out;
  // DFS over the predecessor DAG, building paths dst -> src then reversing.
  std::vector<RouterId> cur = {dst};
  auto dfs = [&](auto&& self, RouterId r) -> void {
    if (out.size() >= max_paths) return;
    if (r == src) {
      std::vector<RouterId> path(cur.rbegin(), cur.rend());
      out.push_back(std::move(path));
      return;
    }
    for (LogicalLinkId l : res.pred_links[r.value()]) {
      RouterId p = net_.link_peer(l, r);
      cur.push_back(p);
      self(self, p);
      cur.pop_back();
    }
  };
  dfs(dfs, dst);
  return out;
}

}  // namespace grca::routing
