// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// OSPF routing simulation with time-versioned link weights.
//
// The paper's G-RCA computes "the logical link or router level path between
// [an ingress/egress pair] via an OSPF routing simulation based on
// network-wide link weights from route-monitoring tools such as OSPFMon"
// (§II-B utility 3), including all paths under ECMP. This module is that
// simulation: it keeps the full history of weight changes so any path can be
// reconstructed *as of a given time* — the key to diagnosing historical
// events.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/network.h"
#include "util/time.h"

namespace grca::routing {

/// Weight value meaning "costed out": the link is up but advertised at
/// max-metric so traffic avoids it (operators "cost out" links before
/// maintenance). Still usable if no other path exists — but we treat it as
/// unusable for simplicity, matching how the tier-1 ISP uses max-metric.
constexpr int kCostedOut = 0xFFFF;

/// Weight value meaning "down": the adjacency is gone (interface failure).
constexpr int kDown = -1;

/// One weight change observed in the IGP (an LSA in real life).
struct WeightChange {
  util::TimeSec time = 0;
  topology::LogicalLinkId link;
  int old_weight = 0;
  int new_weight = 0;
};

/// The OSPF simulator. Construction snapshots the initial weights from the
/// Network; set_weight() appends changes (times must be non-decreasing per
/// link). All queries take an explicit time.
///
/// Threading: the const query interface is safe to call from concurrent
/// threads (the SPF memo cache is internally synchronized); set_weight() and
/// set_cache_enabled() must not race with queries — replay routing first,
/// then fan diagnosis out.
class OspfSim {
 public:
  explicit OspfSim(const topology::Network& net);

  /// Records a weight change at the given time. new_weight is a positive
  /// metric, kCostedOut, or kDown.
  void set_weight(topology::LogicalLinkId link, util::TimeSec time,
                  int new_weight);

  /// The weight in effect at `time` (initial weight before any change).
  int weight_at(topology::LogicalLinkId link, util::TimeSec time) const;

  /// The time of the most recent recorded change on the link, or
  /// TimeSec-min when it never changed. set_weight() at or after this
  /// instant is guaranteed to succeed.
  util::TimeSec last_change(topology::LogicalLinkId link) const {
    return history_.at(link.value()).back().first;
  }

  /// True when the link carries traffic at `time`.
  bool usable_at(topology::LogicalLinkId link, util::TimeSec time) const {
    int w = weight_at(link, time);
    return w != kDown && w != kCostedOut;
  }

  /// Shortest IGP distance from src to dst at `time`; nullopt if unreachable.
  std::optional<int> distance(topology::RouterId src, topology::RouterId dst,
                              util::TimeSec time) const;

  /// All routers on any shortest (ECMP) path from src to dst at `time`,
  /// including the endpoints. Empty if unreachable. Deduplicated.
  std::vector<topology::RouterId> routers_on_paths(topology::RouterId src,
                                                   topology::RouterId dst,
                                                   util::TimeSec time) const;

  /// All logical links on any shortest (ECMP) path from src to dst at `time`.
  std::vector<topology::LogicalLinkId> links_on_paths(topology::RouterId src,
                                                      topology::RouterId dst,
                                                      util::TimeSec time) const;

  /// Enumerates up to `max_paths` distinct equal-cost router-level paths.
  std::vector<std::vector<topology::RouterId>> paths(
      topology::RouterId src, topology::RouterId dst, util::TimeSec time,
      std::size_t max_paths = 8) const;

  /// Complete change history (ordered per link, globally unsorted).
  const std::vector<WeightChange>& change_log() const noexcept { return log_; }

  /// Routing epoch at `time`: the number of distinct weight-change instants
  /// at or before it. The counter is constant between changes and advances
  /// exactly when routing state can differ, so anything derived purely from
  /// paths-as-of-t (SPF results, spatial projections) is a function of its
  /// epoch — the memo key of the SPF cache and the JoinCache. Lock-free
  /// read of state mutated only by set_weight(), which must not race with
  /// queries (the class's standing replay-then-diagnose contract).
  std::size_t epoch_at(util::TimeSec time) const noexcept {
    return static_cast<std::size_t>(
        std::upper_bound(epoch_times_.begin(), epoch_times_.end(), time) -
        epoch_times_.begin());
  }

  /// Bumped whenever set_weight() records a change at or before an already
  /// recorded instant: epochs at later times renumber (or a boundary changes
  /// meaning), so previously computed epoch numbers go stale. Cache keys
  /// pair the epoch with this generation so stale numbers never alias.
  std::uint64_t epoch_generation() const noexcept { return epoch_generation_; }

  /// Disables/enables SPF memoization (enabled by default). The ablation
  /// benches use this to measure the raw route-reconstruction cost that
  /// dominated the paper's CDN diagnosis times.
  void set_cache_enabled(bool enabled) const {
    std::lock_guard lock(cache_mutex_);
    cache_enabled_ = enabled;
    spf_cache_.clear();
  }

  const topology::Network& network() const noexcept { return net_; }

 private:
  /// Runs Dijkstra from src at `time`; fills dist and the ECMP predecessor
  /// link lists.
  struct SpfResult {
    std::vector<int> dist;  // kUnreachable if not reached
    std::vector<std::vector<topology::LogicalLinkId>> pred_links;
  };
  static constexpr int kUnreachable = std::numeric_limits<int>::max();

  /// Memoized SPF: results are keyed by (src, weight-epoch) — see
  /// epoch_at(). The dominant query pattern (spatial projections repeatedly
  /// reconstructing paths around the same incidents) hits the cache. The
  /// cache is cleared on every set_weight.
  std::shared_ptr<const SpfResult> run_spf(topology::RouterId src,
                                           util::TimeSec time) const;
  SpfResult compute_spf(topology::RouterId src, util::TimeSec time) const;

  const topology::Network& net_;
  /// Per-link ordered history of (time, weight); first entry is the initial
  /// weight at time -inf.
  std::vector<std::vector<std::pair<util::TimeSec, int>>> history_;
  std::vector<WeightChange> log_;
  /// Sorted distinct change instants, maintained eagerly by set_weight() so
  /// epoch_at() reads without locking.
  std::vector<util::TimeSec> epoch_times_;
  std::uint64_t epoch_generation_ = 0;
  /// Guards the memoization state below; compute_spf itself runs outside
  /// the lock (concurrent misses may duplicate work, which is harmless).
  mutable std::mutex cache_mutex_;
  mutable bool cache_enabled_ = true;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const SpfResult>>
      spf_cache_;
};

}  // namespace grca::routing
