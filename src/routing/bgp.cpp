// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "routing/bgp.h"

#include <algorithm>

namespace grca::routing {

using topology::RouterId;
using util::Ipv4Addr;
using util::Ipv4Prefix;
using util::TimeSec;

void BgpSim::announce(const BgpRoute& route, TimeSec time) {
  Candidates* c = rib_.find_exact(route.prefix);
  if (c == nullptr) {
    rib_.insert(route.prefix, Candidates{});
    c = rib_.find_exact(route.prefix);
  }
  auto it = std::find(c->egresses.begin(), c->egresses.end(), route.egress);
  std::size_t idx;
  if (it == c->egresses.end()) {
    idx = c->egresses.size();
    c->egresses.push_back(route.egress);
    c->per_egress.emplace_back();
  } else {
    idx = static_cast<std::size_t>(it - c->egresses.begin());
  }
  auto& eps = c->per_egress[idx];
  if (!eps.empty() && eps.back().end == kTimeMax) {
    // Attribute refresh of an active episode: close and reopen so the
    // historical view before `time` keeps the old attributes.
    eps.back().end = time;
  }
  eps.push_back(Episode{time, kTimeMax, route});
  log_.push_back(BgpUpdate{time, true, route});
  record_epoch(time);
}

void BgpSim::record_epoch(TimeSec time) {
  auto pos = std::lower_bound(epoch_times_.begin(), epoch_times_.end(), time);
  if (pos == epoch_times_.end()) {
    epoch_times_.push_back(time);
  } else {
    // Out-of-order (or repeated-instant) update: epoch numbers handed out
    // for later times renumber, so stale cache stamps must not alias.
    ++epoch_generation_;
    if (*pos != time) epoch_times_.insert(pos, time);
  }
}

void BgpSim::withdraw(Ipv4Prefix prefix, RouterId egress, TimeSec time) {
  Candidates* c = rib_.find_exact(prefix);
  if (c == nullptr) return;
  auto it = std::find(c->egresses.begin(), c->egresses.end(), egress);
  if (it == c->egresses.end()) return;
  auto& eps = c->per_egress[static_cast<std::size_t>(it - c->egresses.begin())];
  if (eps.empty() || eps.back().end != kTimeMax) return;
  eps.back().end = time;
  BgpUpdate u;
  u.time = time;
  u.announce = false;
  u.route = eps.back().route;
  log_.push_back(u);
  record_epoch(time);
}

std::optional<BgpRoute> BgpSim::best_route(RouterId ingress, Ipv4Addr dst,
                                           TimeSec time) const {
  // Longest-prefix walk: the trie lookup returns the most specific prefix
  // node, but that prefix may have no *active* candidate at `time`; real BGP
  // would then fall back to the next-shorter covering prefix. We emulate the
  // fallback by retrying lookups with shrinking prefix length.
  // (Covering prefixes are rare in our workloads, so the loop is cheap.)
  for (int len = 32; len >= 0;) {
    auto match = rib_.lookup(Ipv4Addr(dst.value() & util::mask_bits(len)));
    if (!match) return std::nullopt;
    // Restrict the match to at most `len` bits. The masked lookup may land
    // on a *different* equally-long prefix (it covers the zeroed host bits);
    // always shrink `len` strictly so the walk terminates.
    if (match->prefix.length() > len) {
      len = std::min(len, match->prefix.length()) - 1;
      continue;
    }
    const Candidates& c = *match->value;
    const BgpRoute* best = nullptr;
    int best_igp = 0;
    for (std::size_t i = 0; i < c.egresses.size(); ++i) {
      // Find the episode covering `time` (half-open [start, end)).
      const Episode* active = nullptr;
      for (const Episode& e : c.per_egress[i]) {
        if (e.start <= time && time < e.end) {
          active = &e;
          break;
        }
      }
      if (active == nullptr) continue;
      auto igp = ospf_.distance(ingress, active->route.egress, time);
      if (!igp && ingress != active->route.egress) continue;  // unreachable
      int igp_dist = igp.value_or(0);
      if (best == nullptr) {
        best = &active->route;
        best_igp = igp_dist;
        continue;
      }
      const BgpRoute& r = active->route;
      // Standard decision process, most-preferred first.
      auto key = [](const BgpRoute& x, int igp_d) {
        return std::make_tuple(-x.local_pref, x.as_path_len, x.med, igp_d,
                               x.egress.value());
      };
      if (key(r, igp_dist) < key(*best, best_igp)) {
        best = &r;
        best_igp = igp_dist;
      }
    }
    if (best != nullptr) return *best;
    // No active candidate under this prefix: fall back to a shorter one.
    len = match->prefix.length() - 1;
    if (len < 0) break;
  }
  return std::nullopt;
}

std::optional<RouterId> BgpSim::best_egress(RouterId ingress, Ipv4Addr dst,
                                            TimeSec time) const {
  auto r = best_route(ingress, dst, time);
  if (!r) return std::nullopt;
  return r->egress;
}

void seed_customer_routes(BgpSim& bgp, const topology::Network& net,
                          TimeSec time) {
  for (const topology::CustomerSite& c : net.customers()) {
    BgpRoute route;
    route.prefix = c.announced;
    route.egress = net.interface(c.attachment).router;
    route.next_hop = c.neighbor_ip;
    route.local_pref = 100;
    route.as_path_len = 1;
    bgp.announce(route, time);
  }
}

}  // namespace grca::routing
