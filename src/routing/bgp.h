// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// BGP substrate: historical RIB with best-path selection.
//
// G-RCA maps "Ingress router:Destination" to "Ingress:Egress router" by
// looking up historical BGP data for the longest prefix match and emulating
// the BGP decision process at the ingress router, using route changes from
// its reflectors plus the OSPF distance to candidate egress routers
// (§II-B utility 1). This module is that emulation: a time-versioned RIB
// over a prefix trie, with the standard decision order
//   local-pref > AS-path length > MED > IGP distance > router id.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "routing/ospf.h"
#include "routing/prefix_trie.h"

namespace grca::routing {

/// One candidate path to an external prefix, exiting the ISP at `egress`.
struct BgpRoute {
  util::Ipv4Prefix prefix;
  topology::RouterId egress;   // exit router inside the ISP
  util::Ipv4Addr next_hop;     // external neighbor the egress hands off to
  int local_pref = 100;
  int as_path_len = 1;
  int med = 0;

  friend bool operator==(const BgpRoute&, const BgpRoute&) = default;
};

/// An entry in the BGP monitor feed.
struct BgpUpdate {
  util::TimeSec time = 0;
  bool announce = true;  // false = withdraw
  BgpRoute route;
};

class BgpSim {
 public:
  explicit BgpSim(const OspfSim& ospf) : ospf_(ospf) {}

  /// Announces a route at `time`. Re-announcing an (prefix, egress) pair that
  /// is already active replaces its attributes.
  void announce(const BgpRoute& route, util::TimeSec time);

  /// Withdraws the (prefix, egress) candidate at `time`. No-op if inactive.
  void withdraw(util::Ipv4Prefix prefix, topology::RouterId egress,
                util::TimeSec time);

  /// The best route for destination `dst` as seen from `ingress` at `time`,
  /// or nullopt if no prefix covers dst / no candidate is usable. A candidate
  /// is usable when its egress is IGP-reachable from the ingress at `time`.
  std::optional<BgpRoute> best_route(topology::RouterId ingress,
                                     util::Ipv4Addr dst,
                                     util::TimeSec time) const;

  /// Convenience: just the egress router of best_route().
  std::optional<topology::RouterId> best_egress(topology::RouterId ingress,
                                                util::Ipv4Addr dst,
                                                util::TimeSec time) const;

  /// Every announce/withdraw ever applied, in call order (the monitor feed).
  const std::vector<BgpUpdate>& update_log() const noexcept { return log_; }

  /// Routing epoch at `time`: the number of distinct *effective* update
  /// instants at or before it (no-op withdraws do not count). Same contract
  /// as OspfSim::epoch_at — best_route(ingress, dst, t) is a pure function
  /// of (ingress, dst, BGP epoch, OSPF epoch at t) — and the same threading
  /// rule: announce/withdraw must not race with queries.
  std::size_t epoch_at(util::TimeSec time) const noexcept {
    return static_cast<std::size_t>(
        std::upper_bound(epoch_times_.begin(), epoch_times_.end(), time) -
        epoch_times_.begin());
  }

  /// Bumped when an update arrives at or before an already recorded instant
  /// (see OspfSim::epoch_generation for the aliasing rationale).
  std::uint64_t epoch_generation() const noexcept { return epoch_generation_; }

  const OspfSim& ospf() const noexcept { return ospf_; }

 private:
  /// Activity history of one (prefix, egress) candidate: attribute snapshots
  /// over half-open intervals [start, end).
  struct Episode {
    util::TimeSec start;
    util::TimeSec end;  // TimeMax while active
    BgpRoute route;
  };
  struct Candidates {
    std::vector<std::vector<Episode>> per_egress;  // parallel to egresses
    std::vector<topology::RouterId> egresses;
  };

  static constexpr util::TimeSec kTimeMax =
      std::numeric_limits<util::TimeSec>::max();

  /// Records `time` in the sorted distinct update instants (see epoch_at).
  void record_epoch(util::TimeSec time);

  PrefixTrie<Candidates> rib_;
  const OspfSim& ospf_;
  std::vector<BgpUpdate> log_;
  std::vector<util::TimeSec> epoch_times_;  // sorted, distinct
  std::uint64_t epoch_generation_ = 0;
};

/// Seeds the RIB with every customer site's announced prefix at its
/// attachment PER (all active from `time`). The normal starting state of the
/// modeled ISP's BGP tables.
void seed_customer_routes(BgpSim& bgp, const topology::Network& net,
                          util::TimeSec time);

}  // namespace grca::routing
