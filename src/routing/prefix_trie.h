// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// A binary trie over IPv4 prefixes with longest-prefix-match lookup — the
// core data structure behind the BGP substrate's "look up historical data of
// BGP tables to find the longest prefix match and the network egress point"
// (§II-B utility 1).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "util/ipv4.h"

namespace grca::routing {

/// Maps IPv4 prefixes to values of type T. Inserting the same prefix twice
/// overwrites. Lookup returns the value of the longest matching prefix.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at the given prefix.
  void insert(util::Ipv4Prefix prefix, T value) {
    Node* node = descend_or_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Removes the value at exactly this prefix. Returns whether it existed.
  bool erase(util::Ipv4Prefix prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Pointer to the value stored at exactly this prefix, or nullptr.
  T* find_exact(util::Ipv4Prefix prefix) {
    Node* node = descend(prefix);
    return node && node->value ? &*node->value : nullptr;
  }
  const T* find_exact(util::Ipv4Prefix prefix) const {
    return const_cast<PrefixTrie*>(this)->find_exact(prefix);
  }

  /// Longest-prefix match: value of the most specific prefix covering addr,
  /// together with that prefix. Returns nullopt if nothing covers addr.
  struct Match {
    util::Ipv4Prefix prefix;
    const T* value;
  };
  std::optional<Match> lookup(util::Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<Match> best;
    std::uint32_t bits = addr.value();
    for (int depth = 0; node != nullptr; ++depth) {
      if (node->value) {
        best = Match{util::Ipv4Prefix(addr, depth), &*node->value};
      }
      if (depth == 32) break;
      bool bit = (bits >> (31 - depth)) & 1u;
      node = bit ? node->one.get() : node->zero.get();
    }
    return best;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Visits every (prefix, value) pair in depth-first order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), 0u, 0, fn);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero, one;
  };

  Node* descend(util::Ipv4Prefix prefix) {
    Node* node = root_.get();
    std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length() && node; ++depth) {
      bool bit = (bits >> (31 - depth)) & 1u;
      node = bit ? node->one.get() : node->zero.get();
    }
    return node;
  }

  Node* descend_or_create(util::Ipv4Prefix prefix) {
    Node* node = root_.get();
    std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      bool bit = (bits >> (31 - depth)) & 1u;
      std::unique_ptr<Node>& next = bit ? node->one : node->zero;
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  template <typename Fn>
  void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) const {
    if (node == nullptr) return;
    if (node->value) {
      fn(util::Ipv4Prefix(util::Ipv4Addr(bits), depth), *node->value);
    }
    if (depth == 32) return;
    walk(node->zero.get(), bits, depth + 1, fn);
    walk(node->one.get(), bits | (1u << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace grca::routing
