// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "learn/loop.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/span.h"

namespace grca::learn {

namespace {

std::size_t count_unknown(const std::vector<core::Diagnosis>& diagnoses) {
  std::size_t n = 0;
  for (const core::Diagnosis& d : diagnoses) n += d.primary() == "unknown";
  return n;
}

/// Loop instrumentation, resolved from the installed registry once per run
/// (all-or-nothing, like the engine's counters).
struct LoopCounters {
  obs::Counter* iterations = nullptr;
  obs::Counter* proposed = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* rejected = nullptr;

  LoopCounters() {
    if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
      iterations = &reg->counter("grca_learn_iterations_total");
      proposed = &reg->counter("grca_learn_candidates_proposed_total");
      accepted = &reg->counter("grca_learn_candidates_accepted_total");
      rejected = &reg->counter("grca_learn_candidates_rejected_total");
    }
  }
};

}  // namespace

LearnResult run_learn_loop(
    const apps::Pipeline& pipeline, core::DiagnosisGraph graph,
    const std::vector<sim::TruthEntry>& truth,
    const std::function<std::string(const std::string&)>& canonical,
    const LearnOptions& options) {
  LearnResult result;
  LoopCounters counters;

  // Held-out boundary: everything from the median truth timestamp on is
  // never used for acceptance *comparisons'* training side — candidates must
  // generalize past it.
  util::TimeSec split = options.holdout_split;
  if (split == 0 && !truth.empty()) {
    std::vector<util::TimeSec> times;
    times.reserve(truth.size());
    for (const sim::TruthEntry& e : truth) times.push_back(e.time);
    std::sort(times.begin(), times.end());
    split = times[times.size() / 2];
  }
  result.holdout_split = split;
  constexpr util::TimeSec kFar = std::numeric_limits<util::TimeSec>::max();
  auto holdout_f1 = [&](const std::vector<core::Diagnosis>& d) {
    return apps::score_diagnoses_window(d, truth, split, kFar, canonical,
                                        options.tolerance)
        .f1();
  };
  auto full_score = [&](const std::vector<core::Diagnosis>& d) {
    return apps::score_diagnoses(d, truth, canonical, options.tolerance);
  };

  std::vector<core::Diagnosis> diagnoses =
      pipeline.diagnose_all(graph, options.threads);
  double current_holdout = holdout_f1(diagnoses);
  result.baseline_full = full_score(diagnoses);
  result.baseline_holdout_f1 = current_holdout;
  result.baseline_unknown = count_unknown(diagnoses);

  bool budget_hit = false;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    obs::ScopedSpan span("learn-iteration");
    if (counters.iterations) counters.iterations->inc();
    IterationReport ir;
    ir.iteration = iter;
    ir.unknown_before = count_unknown(diagnoses);

    MineOptions mine_options = options.mine;
    mine_options.seed = options.mine.seed + iter;  // fresh null per round
    MineOutcome mined =
        mine_residue(diagnoses, pipeline.events(), graph, mine_options);
    ir.mined = mined.candidates.size();

    for (const MinedCandidate& cand : mined.candidates) {
      if (result.candidates_evaluated >= options.candidate_budget) {
        budget_hit = true;
        break;
      }
      ++result.candidates_evaluated;
      if (counters.proposed) counters.proposed->inc();

      CandidateReport cr;
      cr.mined_score = cand.result.score;
      cr.mined_p = cand.result.p_value;
      cr.holdout_f1_before = current_holdout;
      cr.holdout_f1_after = current_holdout;
      auto proposed = propose_rule(pipeline.events(), pipeline.mapper(),
                                   graph, cand, options.propose);
      if (!proposed) {
        cr.rule.symptom = graph.root();
        cr.rule.diagnostic = cand.event;
        cr.verdict = "uncalibratable";
        if (counters.rejected) counters.rejected->inc();
        ir.candidates.push_back(std::move(cr));
        continue;
      }
      cr.rule = proposed->rule;
      cr.samples = proposed->calibration.samples;
      cr.coverage = proposed->calibration.coverage;

      core::DiagnosisGraph trial = graph;
      if (proposed->definition) trial.define_event(*proposed->definition);
      trial.add_rule(proposed->rule);
      std::vector<core::Diagnosis> trial_diagnoses =
          pipeline.diagnose_all(trial, options.threads);
      double after = holdout_f1(trial_diagnoses);
      cr.holdout_f1_after = after;
      if (after > current_holdout + options.accept_epsilon) {
        cr.verdict = "accepted";
        graph = std::move(trial);
        diagnoses = std::move(trial_diagnoses);
        current_holdout = after;
        result.accepted_rules.push_back(proposed->rule);
        ++ir.accepted;
        if (counters.accepted) counters.accepted->inc();
      } else {
        cr.verdict = "rejected";
        if (counters.rejected) counters.rejected->inc();
      }
      ir.candidates.push_back(std::move(cr));
    }

    ir.full = full_score(diagnoses);
    ir.holdout_f1 = current_holdout;
    bool converged = ir.accepted == 0 && !budget_hit;
    result.iterations.push_back(std::move(ir));
    if (budget_hit) {
      result.stop_reason = "candidate-budget";
      break;
    }
    if (converged) {
      result.stop_reason = "converged";
      break;
    }
  }
  if (result.stop_reason.empty()) result.stop_reason = "max-iterations";

  result.final_full = full_score(diagnoses);
  result.final_holdout_f1 = current_holdout;
  result.final_unknown = count_unknown(diagnoses);
  result.final_graph = std::move(graph);
  return result;
}

}  // namespace grca::learn
