// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The LearnDriver: the benchmark-style harness around the closed learn loop
// (apps/benchmark.{h,cpp} is the sibling pattern). It applies the requested
// rule ablations, runs the loop, and renders the per-iteration accuracy
// curve as JSON ("grca-learn-v1"), a flat gate map for tools/bench_diff.py,
// a human-readable text report, and the accepted rules as reviewable DSL.
// With `deterministic` set every rendering is byte-stable for fixed inputs.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "learn/loop.h"

namespace grca::learn {

struct LearnDriverOptions {
  LearnOptions loop;
  /// Rules to drop from the starting graph (symptom, diagnostic) — the
  /// rule-ablation benchmark mode.
  std::vector<std::pair<std::string, std::string>> ablate;
  /// Omit wall-clock timing from every rendering (byte-stable output).
  bool deterministic = false;
  /// Report metadata: what was learned on ("<topology>.<scenario>" or
  /// "study:<name>") and the corpus seed.
  std::string label;
  std::uint64_t seed = 0;
};

struct LearnRun {
  LearnDriverOptions options;
  std::size_t ablated_matched = 0;    // ablate specs that removed a rule
  std::size_t ablated_relearned = 0;  // ablated edges re-learned by the loop
  LearnResult result;
  double elapsed_seconds = 0.0;  // 0 when deterministic
};

class LearnDriver {
 public:
  explicit LearnDriver(LearnDriverOptions options)
      : options_(std::move(options)) {}

  /// Ablates, learns, post-checks. `graph` is the starting library (before
  /// ablation); `truth` and `canonical` feed the scorer.
  LearnRun run(const apps::Pipeline& pipeline, core::DiagnosisGraph graph,
               const std::vector<sim::TruthEntry>& truth,
               const std::function<std::string(const std::string&)>&
                   canonical) const;

  const LearnDriverOptions& options() const noexcept { return options_; }

 private:
  LearnDriverOptions options_;
};

/// True when the per-iteration held-out F1 curve never decreases (and never
/// drops below the baseline) — the accept criterion's invariant, asserted by
/// the CI ablation gate.
bool curve_monotone(const LearnRun& run);

/// The learn report document ("grca-learn-v1").
std::string render_learn_json(const LearnRun& run);

/// Flat {"learn.<metric>": value} map for tools/bench_diff.py gating.
std::string render_learn_gate_json(const LearnRun& run);

/// Human-readable accuracy curve + accepted rules for the terminal.
std::string render_learn_text(const LearnRun& run);

/// The accepted rules as DSL rule blocks (loadable via `--dsl` on top of
/// any graph defining the endpoint events), with a review header comment.
std::string render_learned_rules_dsl(const LearnRun& run);

}  // namespace grca::learn
