// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "learn/propose.h"

#include <algorithm>

#include "util/strings.h"

namespace grca::learn {

namespace {

const std::vector<core::LocationType>& default_ladder() {
  static const std::vector<core::LocationType> ladder = {
      core::LocationType::kInterface, core::LocationType::kLogicalLink,
      core::LocationType::kPhysicalLink, core::LocationType::kRouter,
      core::LocationType::kPop};
  return ladder;
}

std::string origin_text(const MinedCandidate& mined,
                        const core::CalibrationResult& calibration,
                        core::LocationType level) {
  std::string text = "learned: nice score ";
  text += util::format_double(mined.result.score, 4);
  text += ", p ";
  text += util::format_double(mined.result.p_value, 4);
  text += ", ";
  text += std::to_string(calibration.samples);
  text += " samples at ";
  text += core::to_string(level);
  text += ", coverage ";
  text += util::format_double(100.0 * calibration.coverage, 1);
  text += "%";
  return text;
}

}  // namespace

std::optional<ProposedRule> propose_rule(const core::EventStoreView& store,
                                         const core::LocationMapper& mapper,
                                         const core::DiagnosisGraph& graph,
                                         const MinedCandidate& mined,
                                         const ProposeOptions& options) {
  const std::string& root = graph.root();
  const std::vector<core::LocationType>& ladder =
      options.join_levels.empty() ? default_ladder() : options.join_levels;

  // Walk the ladder specific-to-general and take the first level whose
  // calibration clears the coverage floor (coincidence background dilutes
  // coverage at coarser joins, so the first passing level is the causal
  // one). Causes with spread onset lags — a congestion episode produces
  // symptoms for hours after its start — never clear the floor at any
  // level; for those, fall back to the best-covered calibration and let the
  // held-out F1 gate decide (the engine joins on the diagnostic's full
  // start..end interval, which the start-lag coverage metric understates).
  std::optional<core::CalibrationResult> chosen;
  core::LocationType chosen_level{};
  std::optional<core::CalibrationResult> fallback;
  core::LocationType fallback_level{};
  for (core::LocationType level : ladder) {
    auto calibration = core::calibrate_temporal(
        store, mapper, root, mined.event, level, options.calibration);
    if (!calibration) continue;
    if (calibration->coverage >= options.min_coverage) {
      chosen = *calibration;
      chosen_level = level;
      break;
    }
    if (!fallback || calibration->coverage > fallback->coverage) {
      fallback = *calibration;
      fallback_level = level;
    }
  }
  if (!chosen && fallback) {
    chosen = fallback;
    chosen_level = fallback_level;
  }
  if (chosen) {
    core::LocationType level = chosen_level;
    const core::CalibrationResult& calibration = *chosen;
    ProposedRule proposed;
    proposed.calibration = calibration;
    core::DiagnosisRule& rule = proposed.rule;
    rule.symptom = root;
    rule.diagnostic = mined.event;
    rule.temporal = calibration.rule;
    rule.join_level = level;
    rule.priority = options.base_priority;
    for (const core::DiagnosisRule& r : graph.rules_from(root)) {
      rule.priority = std::max(rule.priority, r.priority +
                                                  options.priority_step);
    }
    rule.origin = origin_text(mined, calibration, level);
    if (!graph.has_event(mined.event)) {
      core::EventDefinition def;
      def.name = mined.event;
      def.location_type = mined.location_type;
      def.description = "mined by grca learn";
      proposed.definition = std::move(def);
    }

    // The rule must keep the graph well-formed (defined endpoints, no
    // cycle); a candidate that cannot be added is no candidate at all.
    try {
      core::DiagnosisGraph trial = graph;
      if (proposed.definition) trial.define_event(*proposed.definition);
      trial.add_rule(rule);
      trial.validate();
    } catch (const std::exception&) {
      return std::nullopt;
    }
    return proposed;
  }
  return std::nullopt;
}

}  // namespace grca::learn
