// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "learn/driver.h"

#include <chrono>
#include <sstream>

#include "core/rule_dsl.h"
#include "obs/export.h"
#include "util/strings.h"
#include "util/table.h"

namespace grca::learn {

namespace {

std::string ratio(double v) { return util::format_double(v, 4); }

std::string ablate_spec(const std::pair<std::string, std::string>& edge) {
  return edge.first + "->" + edge.second;
}

std::string temporal_text(const core::TemporalRule& t) {
  std::ostringstream os;
  os << "symptom " << core::to_string(t.symptom.option) << " " << t.symptom.left
     << " " << t.symptom.right << "; diagnostic "
     << core::to_string(t.diagnostic.option) << " " << t.diagnostic.left << " "
     << t.diagnostic.right;
  return os.str();
}

void append_score(std::ostringstream& os, std::size_t unknown,
                  const apps::Score& score, double holdout_f1) {
  os << "\"unknown\": " << unknown << ", \"truth\": " << score.truth_total
     << ", \"diagnosed\": " << score.diagnosed_total
     << ", \"matched\": " << score.matched
     << ", \"correct\": " << score.correct
     << ", \"precision\": " << ratio(score.precision())
     << ", \"recall\": " << ratio(score.recall())
     << ", \"f1\": " << ratio(score.f1())
     << ", \"holdout_f1\": " << ratio(holdout_f1);
}

}  // namespace

LearnRun LearnDriver::run(
    const apps::Pipeline& pipeline, core::DiagnosisGraph graph,
    const std::vector<sim::TruthEntry>& truth,
    const std::function<std::string(const std::string&)>& canonical) const {
  LearnRun run;
  run.options = options_;
  for (const auto& edge : options_.ablate) {
    run.ablated_matched +=
        graph.remove_rule(edge.first, edge.second) > 0 ? 1 : 0;
  }
  auto t0 = std::chrono::steady_clock::now();
  run.result = run_learn_loop(pipeline, std::move(graph), truth, canonical,
                              options_.loop);
  auto t1 = std::chrono::steady_clock::now();
  if (!options_.deterministic) {
    run.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  }
  for (const auto& edge : options_.ablate) {
    for (const core::DiagnosisRule& rule : run.result.accepted_rules) {
      if (rule.symptom == edge.first && rule.diagnostic == edge.second) {
        ++run.ablated_relearned;
        break;
      }
    }
  }
  return run;
}

bool curve_monotone(const LearnRun& run) {
  double prev = run.result.baseline_holdout_f1;
  for (const IterationReport& ir : run.result.iterations) {
    if (ir.holdout_f1 < prev) return false;
    prev = ir.holdout_f1;
  }
  return true;
}

std::string render_learn_json(const LearnRun& run) {
  const LearnResult& r = run.result;
  const LearnOptions& loop = run.options.loop;
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"grca-learn-v1\",\n";
  os << "  \"label\": \"" << obs::json_escape(run.options.label) << "\",\n";
  os << "  \"seed\": " << run.options.seed << ",\n";
  os << "  \"deterministic\": "
     << (run.options.deterministic ? "true" : "false") << ",\n";
  os << "  \"options\": {\"max_iterations\": " << loop.max_iterations
     << ", \"candidate_budget\": " << loop.candidate_budget
     << ", \"min_score\": " << ratio(loop.mine.nice.min_score)
     << ", \"alpha\": " << ratio(loop.mine.nice.alpha)
     << ", \"holdout_split\": " << r.holdout_split << "},\n";
  os << "  \"ablated\": [";
  for (std::size_t i = 0; i < run.options.ablate.size(); ++i) {
    os << (i ? ", " : "") << '"'
       << obs::json_escape(ablate_spec(run.options.ablate[i])) << '"';
  }
  os << "],\n";
  os << "  \"ablated_matched\": " << run.ablated_matched << ",\n";
  os << "  \"ablated_relearned\": " << run.ablated_relearned << ",\n";
  os << "  \"baseline\": {";
  append_score(os, r.baseline_unknown, r.baseline_full, r.baseline_holdout_f1);
  os << "},\n";
  os << "  \"iterations\": [\n";
  for (std::size_t i = 0; i < r.iterations.size(); ++i) {
    const IterationReport& ir = r.iterations[i];
    os << "    {\"iteration\": " << ir.iteration
       << ", \"unknown_before\": " << ir.unknown_before
       << ", \"mined\": " << ir.mined << ", \"accepted\": " << ir.accepted
       << ",\n     \"candidates\": [";
    for (std::size_t j = 0; j < ir.candidates.size(); ++j) {
      const CandidateReport& cr = ir.candidates[j];
      os << (j ? ",\n       " : "\n       ");
      os << "{\"symptom\": \"" << obs::json_escape(cr.rule.symptom)
         << "\", \"diagnostic\": \"" << obs::json_escape(cr.rule.diagnostic)
         << "\", \"join\": \"" << core::to_string(cr.rule.join_level)
         << "\", \"priority\": " << cr.rule.priority
         << ", \"temporal\": \"" << temporal_text(cr.rule.temporal)
         << "\", \"mined_score\": " << ratio(cr.mined_score)
         << ", \"mined_p\": " << ratio(cr.mined_p)
         << ", \"samples\": " << cr.samples
         << ", \"coverage\": " << ratio(cr.coverage)
         << ", \"holdout_f1_before\": " << ratio(cr.holdout_f1_before)
         << ", \"holdout_f1_after\": " << ratio(cr.holdout_f1_after)
         << ", \"verdict\": \"" << cr.verdict << "\"}";
    }
    os << (ir.candidates.empty() ? "],\n" : "\n     ],\n");
    os << "     ";
    append_score(os, ir.unknown_before, ir.full, ir.holdout_f1);
    os << '}' << (i + 1 < r.iterations.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"final\": {";
  append_score(os, r.final_unknown, r.final_full, r.final_holdout_f1);
  os << "},\n";
  os << "  \"accepted_rules\": [";
  for (std::size_t i = 0; i < r.accepted_rules.size(); ++i) {
    os << (i ? ", " : "") << '"'
       << obs::json_escape(core::render_rule_dsl(r.accepted_rules[i])) << '"';
  }
  os << "],\n";
  os << "  \"candidates_evaluated\": " << r.candidates_evaluated << ",\n";
  os << "  \"curve_monotone\": " << (curve_monotone(run) ? "true" : "false")
     << ",\n";
  os << "  \"stop_reason\": \"" << r.stop_reason << "\",\n";
  os << "  \"converged\": "
     << (r.stop_reason == "converged" ? "true" : "false");
  if (!run.options.deterministic) {
    os << ",\n  \"elapsed_seconds\": "
       << util::format_double(run.elapsed_seconds, 3);
  }
  os << "\n}\n";
  return os.str();
}

std::string render_learn_gate_json(const LearnRun& run) {
  const LearnResult& r = run.result;
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    os << (first ? "" : ",\n") << "  \"" << obs::json_escape(key)
       << "\": " << value;
    first = false;
  };
  emit("learn.baseline_f1", ratio(r.baseline_full.f1()));
  emit("learn.final_precision", ratio(r.final_full.precision()));
  emit("learn.final_recall", ratio(r.final_full.recall()));
  emit("learn.final_f1", ratio(r.final_full.f1()));
  emit("learn.final_holdout_f1", ratio(r.final_holdout_f1));
  emit("learn.curve_monotone", curve_monotone(run) ? "true" : "false");
  if (!run.options.ablate.empty()) {
    emit("learn.relearned_ablated",
         run.ablated_relearned == run.options.ablate.size() ? "true"
                                                            : "false");
  }
  emit("learn.iterations", std::to_string(r.iterations.size()));
  emit("learn.accepted_count", std::to_string(r.accepted_rules.size()));
  emit("learn.candidates_evaluated", std::to_string(r.candidates_evaluated));
  os << "\n}\n";
  return os.str();
}

std::string render_learn_text(const LearnRun& run) {
  const LearnResult& r = run.result;
  std::ostringstream os;
  os << "rule learning — " << run.options.label << " (seed "
     << run.options.seed << ")\n";
  if (!run.options.ablate.empty()) {
    os << "ablated:";
    for (const auto& edge : run.options.ablate) {
      os << " " << ablate_spec(edge);
    }
    os << " (" << run.ablated_matched << " matched, " << run.ablated_relearned
       << " re-learned)\n";
  }
  os << "baseline: f1 " << ratio(r.baseline_full.f1()) << " (precision "
     << ratio(r.baseline_full.precision()) << ", recall "
     << ratio(r.baseline_full.recall()) << "), unknown "
     << r.baseline_unknown << "/" << r.baseline_full.diagnosed_total << "\n\n";

  util::TextTable table({"Iter", "Unknown", "Mined", "Accepted", "Precision",
                         "Recall", "F1", "Holdout-F1"});
  for (const IterationReport& ir : r.iterations) {
    table.add_row({std::to_string(ir.iteration),
                   std::to_string(ir.unknown_before),
                   std::to_string(ir.mined), std::to_string(ir.accepted),
                   ratio(ir.full.precision()), ratio(ir.full.recall()),
                   ratio(ir.full.f1()), ratio(ir.holdout_f1)});
  }
  os << table.render("accuracy curve") << "\n";
  os << "final: f1 " << ratio(r.final_full.f1()) << " (precision "
     << ratio(r.final_full.precision()) << ", recall "
     << ratio(r.final_full.recall()) << "), unknown " << r.final_unknown
     << "/" << r.final_full.diagnosed_total << "\n";
  os << "stop: " << r.stop_reason << " after " << r.iterations.size()
     << " iteration(s), " << r.candidates_evaluated
     << " candidate(s) evaluated\n";
  if (!r.accepted_rules.empty()) {
    os << "\naccepted rules:\n";
    for (const core::DiagnosisRule& rule : r.accepted_rules) {
      os << core::render_rule_dsl(rule);
    }
  }
  if (!run.options.deterministic) {
    os << "\nelapsed: " << util::format_double(run.elapsed_seconds, 1)
       << " s\n";
  }
  return os.str();
}

std::string render_learned_rules_dsl(const LearnRun& run) {
  std::ostringstream os;
  os << "# rules learned by `grca learn` on " << run.options.label
     << " (seed " << run.options.seed << ")\n"
     << "# review before folding into the library; load with --dsl on top\n"
     << "# of a graph that defines the endpoint events.\n";
  for (const core::DiagnosisRule& rule : run.result.accepted_rules) {
    os << core::render_rule_dsl(rule);
  }
  return os.str();
}

}  // namespace grca::learn
