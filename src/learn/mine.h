// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Residue mining — the first half of the §II-E evolution loop. Symptoms the
// current rule library leaves unexplained ("unknown" diagnoses) form a
// residue series; the miner screens it with the NICE correlation tester
// against the series of every candidate diagnostic event in the store
// (everything not already a diagnostic of the root), grouped per location
// type so new telemetry types never perturb the screening of existing ones.
// Survivors of the significance + `min_score` effect-size floor come back
// ranked best score first, ready for the proposal stage.
//
// Candidate series are built at *episode-onset* granularity: per-location
// runs of an event (polled telemetry re-asserting a condition every cycle)
// are merged into one episode and only the onset bin is marked. A fault that
// re-fires an SNMP signature for hours would otherwise occupy most bins and
// drown the correlation with its own one-shot symptom onsets.
#pragma once

#include <string>
#include <vector>

#include "core/correlation.h"
#include "core/diagnosis_graph.h"
#include "core/engine.h"
#include "core/event_store.h"

namespace grca::learn {

struct MineOptions {
  /// NICE parameters (bin comes from the symptom series; see `bin`).
  core::NiceParams nice{.permutations = 200, .alpha = 0.01, .lag_slack = 1,
                        .min_score = 0.15};
  util::TimeSec bin = 300;
  /// Keep at most this many mined candidates per round (best score first).
  std::size_t max_candidates = 8;
  /// Base seed for the permutation RNG; mixed with the location-type name
  /// so each screening group draws an independent, stable null distribution.
  std::uint64_t seed = 1;
};

/// One mined correlation: a candidate diagnostic event for the residue.
struct MinedCandidate {
  std::string event;
  core::LocationType location_type;  // of the candidate's instances
  core::CorrelationResult result;
};

struct MineOutcome {
  std::size_t residue = 0;  // unknown diagnoses the series was built from
  std::vector<MinedCandidate> candidates;  // best score first
};

/// Mines the unknown residue of `diagnoses` against every candidate event in
/// `store`. Candidates exclude the graph root and events already reachable
/// as a direct diagnostic of the root. Deterministic in (inputs, options).
MineOutcome mine_residue(const std::vector<core::Diagnosis>& diagnoses,
                         const core::EventStoreView& store,
                         const core::DiagnosisGraph& graph,
                         const MineOptions& options);

}  // namespace grca::learn
