// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "learn/mine.h"

#include <algorithm>
#include <map>

#include "util/rng.h"

namespace grca::learn {

namespace {

/// Stable 64-bit string hash (FNV-1a); std::hash is not stable across
/// standard libraries and screening seeds must match everywhere.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The corpus-wide [start, end) window, aligned to `bin`.
bool store_window(const core::EventStoreView& store, util::TimeSec bin,
                  util::TimeSec& start, util::TimeSec& end) {
  bool any = false;
  for (const std::string& name : store.event_names()) {
    std::span<const core::EventInstance> span = store.all(name);
    if (span.empty()) continue;
    util::TimeSec lo = span.front().when.start;  // sorted by start
    util::TimeSec hi = lo;
    for (const core::EventInstance& e : span) {
      hi = std::max(hi, e.when.end);
    }
    start = any ? std::min(start, lo) : lo;
    end = any ? std::max(end, hi) : hi;
    any = true;
  }
  if (!any) return false;
  start -= ((start % bin) + bin) % bin;  // align down
  end += 1;                              // half-open, cover the last end
  return end > start;
}

/// Impulse series of per-location episode onsets. Consecutive instances at
/// the same location whose gap is within one bin are one episode (polled
/// sources re-assert a live condition every cycle); only the episode's
/// first bin is marked, so a long fault correlates like the one-shot
/// symptom onsets it causes instead of flooding the series.
core::EventSeries onset_series(std::span<const core::EventInstance> instances,
                               util::TimeSec start, util::TimeSec end,
                               util::TimeSec bin) {
  core::EventSeries series;
  series.start = start;
  series.bin = bin;
  series.values.assign(
      static_cast<std::size_t>((end - start + bin - 1) / bin), 0.0);
  std::map<core::Location, util::TimeSec> episode_end;
  for (const core::EventInstance& e : instances) {  // sorted by start
    auto [it, fresh] = episode_end.try_emplace(e.where, e.when.end);
    if (!fresh && e.when.start <= it->second + bin) {
      it->second = std::max(it->second, e.when.end);
      continue;
    }
    it->second = e.when.end;
    if (e.when.start >= start && e.when.start < end) {
      series.values[static_cast<std::size_t>((e.when.start - start) / bin)] =
          1.0;
    }
  }
  return series;
}

}  // namespace

MineOutcome mine_residue(const std::vector<core::Diagnosis>& diagnoses,
                         const core::EventStoreView& store,
                         const core::DiagnosisGraph& graph,
                         const MineOptions& options) {
  MineOutcome outcome;
  std::vector<core::EventInstance> residue;
  for (const core::Diagnosis& d : diagnoses) {
    if (d.primary() == "unknown") residue.push_back(d.symptom);
  }
  outcome.residue = residue.size();
  if (residue.empty()) return outcome;

  util::TimeSec start = 0, end = 0;
  if (!store_window(store, options.bin, start, end)) return outcome;
  core::EventSeries symptom_series =
      make_series(residue, start, end, options.bin);

  // Candidate events: everything except the root and its existing direct
  // diagnostics (those already have a rule; re-mining them is noise).
  const std::string& root = graph.root();
  std::vector<std::string> names;
  for (const std::string& name : store.event_names()) {  // sorted
    if (name == root || store.all(name).empty()) continue;
    bool covered = false;
    for (const core::DiagnosisRule& r : graph.rules_from(root)) {
      if (r.diagnostic == name) covered = true;
    }
    if (!covered) names.push_back(name);
  }

  // Per-location-type screening: each group gets its own series batch and a
  // stable, independently seeded permutation RNG, so adding events of a new
  // type never changes the verdicts inside existing groups.
  std::map<int, std::vector<std::size_t>> groups;  // type -> indices in names
  std::vector<core::LocationType> types(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    types[i] = graph.has_event(names[i])
                   ? graph.event(names[i]).location_type
                   : store.all(names[i]).front().where.type;
    groups[static_cast<int>(types[i])].push_back(i);
  }
  for (const auto& [type_tag, members] : groups) {
    core::LocationType type = static_cast<core::LocationType>(type_tag);
    std::vector<core::EventSeries> series;
    series.reserve(members.size());
    for (std::size_t i : members) {
      series.push_back(onset_series(store.all(names[i]), start, end,
                                    options.bin));
    }
    util::Rng rng(options.seed ^ fnv1a(core::to_string(type)));
    for (const core::RankedCorrelation& ranked :
         screen_candidates(symptom_series, series, options.nice, rng)) {
      outcome.candidates.push_back(MinedCandidate{
          names[members[ranked.index]], type, ranked.result});
    }
  }
  std::sort(outcome.candidates.begin(), outcome.candidates.end(),
            [](const MinedCandidate& a, const MinedCandidate& b) {
              if (a.result.score != b.result.score) {
                return a.result.score > b.result.score;
              }
              return a.event < b.event;
            });
  if (outcome.candidates.size() > options.max_candidates) {
    outcome.candidates.resize(options.max_candidates);
  }
  return outcome;
}

}  // namespace grca::learn
