// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The closed §II-E evolution loop: diagnose -> mine the unknown residue ->
// propose candidate rules -> re-score against ground truth -> accept only
// candidates that improve held-out F1 -> repeat until an iteration accepts
// nothing (convergence) or the candidate budget is exhausted.
//
// The accept criterion evaluates each candidate on a held-out time slice of
// the corpus (symptoms after the median truth timestamp), so the per
// iteration held-out F1 curve is monotone non-decreasing by construction —
// the property the CI ablation gate asserts. Scores on the full corpus ride
// along for reporting.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/pipeline.h"
#include "apps/scoring.h"
#include "learn/mine.h"
#include "learn/propose.h"

namespace grca::learn {

struct LearnOptions {
  MineOptions mine;
  ProposeOptions propose;
  std::size_t max_iterations = 8;
  /// Total candidates evaluated (diagnose + re-score passes) across the run.
  std::size_t candidate_budget = 24;
  /// Held-out F1 must improve by more than this for a candidate to land.
  double accept_epsilon = 1e-9;
  /// Train/held-out boundary (seconds). 0 = median truth timestamp.
  util::TimeSec holdout_split = 0;
  unsigned threads = 0;           // diagnosis fan-out (0 = hardware)
  util::TimeSec tolerance = 30;   // scoring match tolerance
};

/// One evaluated candidate, accepted or not.
struct CandidateReport {
  core::DiagnosisRule rule;
  double mined_score = 0.0;
  double mined_p = 1.0;
  std::size_t samples = 0;     // calibration co-occurrences
  double coverage = 0.0;       // calibration window coverage
  double holdout_f1_before = 0.0;
  double holdout_f1_after = 0.0;
  std::string verdict;  // "accepted" | "rejected" | "uncalibratable"
};

struct IterationReport {
  std::size_t iteration = 0;       // 1-based
  std::size_t unknown_before = 0;  // residue entering the iteration
  std::size_t mined = 0;           // candidates surviving the NICE screen
  std::vector<CandidateReport> candidates;
  std::size_t accepted = 0;
  apps::Score full;        // full-corpus score after the iteration
  double holdout_f1 = 0.0; // held-out F1 after the iteration (monotone)
};

struct LearnResult {
  apps::Score baseline_full;
  double baseline_holdout_f1 = 0.0;
  std::size_t baseline_unknown = 0;
  util::TimeSec holdout_split = 0;  // resolved boundary actually used
  std::vector<IterationReport> iterations;
  std::vector<core::DiagnosisRule> accepted_rules;  // in acceptance order
  core::DiagnosisGraph final_graph;
  apps::Score final_full;
  double final_holdout_f1 = 0.0;
  std::size_t final_unknown = 0;
  std::size_t candidates_evaluated = 0;
  std::string stop_reason;  // "converged" | "candidate-budget" |
                            // "max-iterations"
};

/// Runs the loop over `pipeline`'s event view, starting from `graph`
/// (possibly ablated). Deterministic in (corpus, graph, options).
LearnResult run_learn_loop(
    const apps::Pipeline& pipeline, core::DiagnosisGraph graph,
    const std::vector<sim::TruthEntry>& truth,
    const std::function<std::string(const std::string&)>& canonical,
    const LearnOptions& options);

}  // namespace grca::learn
