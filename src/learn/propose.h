// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Rule proposal — the second half of the §II-E evolution loop. Given a mined
// (symptom, candidate-diagnostic) correlation, search the spatial join-level
// ladder from most specific to most general through the LocationMapper, and
// at each level learn temporal margins with calibrate_temporal(). The first
// level whose calibration clears the sample and coverage floors wins: a join
// coarser than the true causal locality still co-occurs, but its coincidence
// background dilutes coverage, so specificity-first search recovers the
// operator's intended join level from data.
#pragma once

#include <optional>
#include <vector>

#include "core/calibration.h"
#include "core/diagnosis_graph.h"
#include "core/location.h"
#include "learn/mine.h"

namespace grca::learn {

struct ProposeOptions {
  core::CalibrationOptions calibration;
  /// Minimum fraction of measured lags the calibrated window must cover for
  /// a join level to be accepted.
  double min_coverage = 0.5;
  /// Join-level ladder, most specific first; empty selects the default
  /// {interface, logical-link, physical-link, router, pop}.
  std::vector<core::LocationType> join_levels;
  /// Learned priority = max priority among the symptom's existing rules plus
  /// this step (`base_priority` when the symptom has none) — mined causes
  /// outrank the rules that failed to explain the residue.
  int priority_step = 5;
  int base_priority = 100;
};

struct ProposedRule {
  core::DiagnosisRule rule;
  core::CalibrationResult calibration;
  /// Definition to add before the rule when the diagnostic event is not in
  /// the graph yet (its location type comes from the mined instances).
  std::optional<core::EventDefinition> definition;
};

/// Builds a candidate rule root -> mined.event, or nullopt when no join
/// level calibrates (or the rule would make the graph cyclic). Deterministic.
std::optional<ProposedRule> propose_rule(const core::EventStoreView& store,
                                         const core::LocationMapper& mapper,
                                         const core::DiagnosisGraph& graph,
                                         const MinedCandidate& mined,
                                         const ProposeOptions& options);

}  // namespace grca::learn
