// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Registry exporters. Two formats:
//
//  - Prometheus text exposition format (0.0.4): `# TYPE` headers per metric
//    family, `name{labels} value` samples, histograms expanded into
//    cumulative `_bucket{le="..."}` series plus `_sum`/`_count` — directly
//    scrapeable or checkable with promtool.
//  - JSON: one object with "counters", "gauges" and "histograms" maps; the
//    full registry name (including the label block) is the key. Histograms
//    carry raw per-bucket counts (non-cumulative), bounds, count and sum.
//
// Registry names follow the `base{label="value",...}` convention described
// in metrics.h; the renderers split the label block off the base name.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace grca::obs {

/// Renders a snapshot of `registry` in Prometheus text format.
std::string render_prometheus(const MetricsRegistry& registry);

/// Renders a snapshot of `registry` as a JSON document.
std::string render_json(const MetricsRegistry& registry);

/// Splits `name` into (base, labels): "a_total{x=\"y\"}" -> ("a_total",
/// "x=\"y\""); names without a label block return an empty label string.
std::pair<std::string, std::string> split_labels(const std::string& name);

/// Escapes a label value for the text exposition format: backslash, double
/// quote and newline (the three characters the format requires escaped).
std::string prometheus_escape_label_value(const std::string& value);

/// Builds a registry name with one escaped label:
/// ("m_total", "source", "a\"b") -> `m_total{source="a\"b"}`. Every
/// instrumentation site that labels by untrusted strings (event names,
/// source names) must build its series names through this.
std::string prometheus_label(const std::string& base, const std::string& key,
                             const std::string& value);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

}  // namespace grca::obs
