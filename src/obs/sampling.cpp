// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/sampling.h"

namespace grca::obs {

RegistrySampler::RegistrySampler(MetricsRegistry* registry)
    : registry_(registry) {
  if (registry_) baseline_ = registry_->snapshot().counters;
}

void RegistrySampler::sample() {
  if (!registry_) return;
  MetricsRegistry::Snapshot snap = registry_->snapshot();
  for (const auto& [name, value] : snap.gauges) {
    auto [it, inserted] = peaks_.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  latest_ = std::move(snap.counters);
  ++samples_;
}

double RegistrySampler::gauge_peak(const std::string& gauge) const {
  auto it = peaks_.find(gauge);
  return it == peaks_.end() ? 0.0 : it->second;
}

std::uint64_t RegistrySampler::counter_delta(const std::string& counter) const {
  auto it = latest_.find(counter);
  if (it == latest_.end()) return 0;
  auto base = baseline_.find(counter);
  return it->second - (base == baseline_.end() ? 0 : base->second);
}

}  // namespace grca::obs
