// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Telemetry feed-health monitoring. The paper's platform treated data
// quality as a first-class operational concern: with ~600 feeds, a silent
// poller or a lagging syslog relay corrupts diagnoses long before anyone
// notices the missing records. This monitor tracks, per telemetry source:
//
//  - arrival counts and collector rejections;
//  - the last-seen event timestamp and an arrival-lag distribution
//    (how far behind the stream's high-water mark records arrive);
//  - gap/silence detection against the source's expected cadence (a 5-min
//    SNMP poller that has been quiet for 20 minutes is silent; syslog,
//    which is event-driven, gets a much slower alarm);
//  - late-drop counts (records that arrived after their region of the
//    stream was frozen and had to be discarded).
//
// Everything is mirrored into the metrics registry as labelled series
// (`grca_feed_*{source="..."}`) so the exporters pick it up, and exposed
// as a Status struct for console output (streaming_monitor's health line).
//
// Threading contract: on_record/on_rejected/on_late_drop/observe_clock are
// single-writer (the ingest thread); status() may be called from the same
// thread at any time. The underlying registry metrics are atomic, so
// concurrent exporters are safe.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "telemetry/records.h"

namespace grca::obs {

/// Number of telemetry source kinds (telemetry::SourceType is a dense enum).
inline constexpr std::size_t kSourceCount = 10;

class FeedHealthMonitor {
 public:
  /// Registers per-source series lazily in `registry`; a null registry
  /// keeps the in-memory status tracking but exports nothing.
  explicit FeedHealthMonitor(MetricsRegistry* registry = registry_ptr());

  /// One record of `source` arrived. `event_utc` is the record's own
  /// timestamp; `arrival_utc` approximates when it reached the collector
  /// (in streaming, the stream high-water mark). Lag = arrival - event.
  void on_record(telemetry::SourceType source, util::TimeSec event_utc,
                 util::TimeSec arrival_utc);

  /// One record of `source` was rejected by the collector (unknown device).
  void on_rejected(telemetry::SourceType source);

  /// One record of `source` arrived too late (behind the freeze horizon /
  /// skew bound) and was dropped.
  void on_late_drop(telemetry::SourceType source);

  /// Re-evaluates gap/silence state against `now` and refreshes the gap
  /// gauges. Call from the tick loop (streaming) or once after a batch run.
  void observe_clock(util::TimeSec now);

  /// Expected record cadence for a source: the interval after which a quiet
  /// feed becomes suspicious (5-minute pollers → 300 s; event-driven
  /// sources get day-scale cadences so they do not false-alarm).
  static util::TimeSec expected_cadence(telemetry::SourceType source) noexcept;

  /// How many cadences of silence before a feed is flagged silent.
  static constexpr int kSilenceCadences = 3;

  struct Status {
    telemetry::SourceType source = telemetry::SourceType::kSyslog;
    std::uint64_t records = 0;
    std::uint64_t rejected = 0;
    std::uint64_t late_drops = 0;
    util::TimeSec last_seen = 0;  // event time of the newest record
    util::TimeSec gap = 0;        // now - last_seen at the last observe_clock
    bool silent = false;          // gap > kSilenceCadences * cadence
    double mean_lag = 0.0;        // mean arrival lag in seconds
  };

  /// Status of every source that has seen at least one record (or drop).
  std::vector<Status> status() const;

  std::uint64_t total_records() const noexcept { return total_records_; }
  std::uint64_t total_late_drops() const noexcept { return total_late_; }

 private:
  struct Feed {
    bool seen = false;
    std::uint64_t records = 0;
    std::uint64_t rejected = 0;
    std::uint64_t late_drops = 0;
    util::TimeSec last_seen = 0;
    util::TimeSec gap = 0;
    bool silent = false;
    double lag_sum = 0.0;
    // Registry series (null when the monitor is unregistered).
    Counter* records_total = nullptr;
    Counter* rejected_total = nullptr;
    Counter* late_drops_total = nullptr;
    Gauge* last_seen_gauge = nullptr;
    Gauge* gap_gauge = nullptr;
    Gauge* silent_gauge = nullptr;
    Histogram* lag_hist = nullptr;
  };

  Feed& feed(telemetry::SourceType source);

  MetricsRegistry* registry_;
  std::vector<Feed> feeds_;  // indexed by SourceType
  std::uint64_t total_records_ = 0;
  std::uint64_t total_late_ = 0;
};

}  // namespace grca::obs
