// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/metrics.h"

#include <algorithm>

namespace grca::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace detail

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> bounds = {
      1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0};
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw ConfigError("Histogram: bucket bounds must be ascending");
  }
  for (Shard& s : shards_) {
    s.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) noexcept {
  // First bound >= v; everything above the last bound lands in +Inf.
  std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsRegistry::check_kind(const std::string& name, Kind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw ConfigError("MetricsRegistry: '" + name +
                      "' already registered as a different metric kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  check_kind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  check_kind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  check_kind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = Snapshot::Hist{h->bounds(), h->snapshot()};
  }
  return snap;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
std::atomic<MetricsRegistry*> g_registry{&default_registry()};
}  // namespace

MetricsRegistry* registry_ptr() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

MetricsRegistry* install_registry(MetricsRegistry* registry) noexcept {
  return g_registry.exchange(registry, std::memory_order_acq_rel);
}

CacheMetrics CacheMetrics::resolve(const std::string& prefix) {
  CacheMetrics m;
  if (MetricsRegistry* reg = registry_ptr()) {
    m.hits = &reg->counter(prefix + "_hits");
    m.misses = &reg->counter(prefix + "_misses");
    m.entries = &reg->gauge(prefix + "_entries");
  }
  return m;
}

}  // namespace grca::obs
