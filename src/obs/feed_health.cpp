// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/feed_health.h"

#include <algorithm>

#include "obs/export.h"

namespace grca::obs {

using telemetry::SourceType;
using util::TimeSec;

namespace {

/// Arrival-lag bounds in seconds: sub-minute through multi-hour skew.
const std::vector<double> kLagBounds = {1,   5,    30,   60,   300,
                                        900, 1800, 3600, 7200, 21600};

std::string series(const char* name, SourceType source) {
  return prometheus_label(name, "source",
                          std::string(telemetry::to_string(source)));
}

}  // namespace

TimeSec FeedHealthMonitor::expected_cadence(SourceType source) noexcept {
  switch (source) {
    case SourceType::kSnmp:
    case SourceType::kPerfMon:
    case SourceType::kCdnMon:
      return 300;  // 5-minute pollers / probes
    case SourceType::kServerLog:
      return 600;
    case SourceType::kSyslog:
      return util::kHour;  // event-driven, but busy networks log steadily
    case SourceType::kLayer1Log:
    case SourceType::kTacacs:
    case SourceType::kOspfMon:
    case SourceType::kBgpMon:
    case SourceType::kWorkflowLog:
      return util::kDay;  // purely event-driven; silence is normal
  }
  return util::kDay;
}

FeedHealthMonitor::FeedHealthMonitor(MetricsRegistry* registry)
    : registry_(registry), feeds_(kSourceCount) {}

FeedHealthMonitor::Feed& FeedHealthMonitor::feed(SourceType source) {
  Feed& f = feeds_[static_cast<std::size_t>(source)];
  if (!f.seen) {
    f.seen = true;
    if (registry_) {
      f.records_total =
          &registry_->counter(series("grca_feed_records_total", source));
      f.rejected_total =
          &registry_->counter(series("grca_feed_rejected_total", source));
      f.late_drops_total =
          &registry_->counter(series("grca_feed_late_drops_total", source));
      f.last_seen_gauge =
          &registry_->gauge(series("grca_feed_last_seen_utc_seconds", source));
      f.gap_gauge =
          &registry_->gauge(series("grca_feed_gap_seconds", source));
      f.silent_gauge = &registry_->gauge(series("grca_feed_silent", source));
      f.lag_hist = &registry_->histogram(
          series("grca_feed_lag_seconds", source), kLagBounds);
    }
  }
  return f;
}

void FeedHealthMonitor::on_record(SourceType source, TimeSec event_utc,
                                  TimeSec arrival_utc) {
  Feed& f = feed(source);
  ++f.records;
  ++total_records_;
  f.last_seen = std::max(f.last_seen, event_utc);
  double lag = static_cast<double>(std::max<TimeSec>(0, arrival_utc - event_utc));
  f.lag_sum += lag;
  if (f.records_total) f.records_total->inc();
  if (f.last_seen_gauge) {
    f.last_seen_gauge->set(static_cast<double>(f.last_seen));
  }
  if (f.lag_hist) f.lag_hist->observe(lag);
}

void FeedHealthMonitor::on_rejected(SourceType source) {
  Feed& f = feed(source);
  ++f.rejected;
  if (f.rejected_total) f.rejected_total->inc();
}

void FeedHealthMonitor::on_late_drop(SourceType source) {
  Feed& f = feed(source);
  ++f.late_drops;
  ++total_late_;
  if (f.late_drops_total) f.late_drops_total->inc();
}

void FeedHealthMonitor::observe_clock(TimeSec now) {
  for (std::size_t i = 0; i < feeds_.size(); ++i) {
    Feed& f = feeds_[i];
    if (!f.seen || f.records == 0) continue;
    f.gap = std::max<TimeSec>(0, now - f.last_seen);
    TimeSec cadence = expected_cadence(static_cast<SourceType>(i));
    f.silent = f.gap > kSilenceCadences * cadence;
    if (f.gap_gauge) f.gap_gauge->set(static_cast<double>(f.gap));
    if (f.silent_gauge) f.silent_gauge->set(f.silent ? 1.0 : 0.0);
  }
}

std::vector<FeedHealthMonitor::Status> FeedHealthMonitor::status() const {
  std::vector<Status> out;
  for (std::size_t i = 0; i < feeds_.size(); ++i) {
    const Feed& f = feeds_[i];
    if (!f.seen) continue;
    Status s;
    s.source = static_cast<SourceType>(i);
    s.records = f.records;
    s.rejected = f.rejected;
    s.late_drops = f.late_drops;
    s.last_seen = f.last_seen;
    s.gap = f.gap;
    s.silent = f.silent;
    s.mean_lag = f.records ? f.lag_sum / static_cast<double>(f.records) : 0.0;
    out.push_back(s);
  }
  return out;
}

}  // namespace grca::obs
