// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Registry sampling: gauges (queue depth, freeze lag) are instantaneous —
// an end-of-run report that reads them once sees only the final value,
// which for a drained pipeline is always zero. RegistrySampler snapshots
// the registry at a caller-chosen cadence (each replay tick, each poll
// interval) and keeps the peak per gauge plus the delta per counter since
// construction, turning the live registry into high-water marks a report
// can cite ("queue depth never exceeded 37").
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace grca::obs {

class RegistrySampler {
 public:
  /// Captures the counter baseline from `registry` (nullptr = no-op
  /// sampler; every query returns zero).
  explicit RegistrySampler(MetricsRegistry* registry = registry_ptr());

  /// Takes one snapshot: refreshes every gauge peak and the latest counter
  /// values. Safe to call concurrently with metric writers (reads are
  /// relaxed-atomic); cheap enough for tick loops, too heavy for
  /// per-record hot paths.
  void sample();

  /// Peak value of `gauge` across all sample() calls (0 when never seen).
  double gauge_peak(const std::string& gauge) const;

  /// Increase of `counter` between construction and the last sample().
  std::uint64_t counter_delta(const std::string& counter) const;

  /// Every gauge peak observed, by registry name.
  const std::map<std::string, double>& gauge_peaks() const noexcept {
    return peaks_;
  }

  std::size_t samples() const noexcept { return samples_; }

 private:
  MetricsRegistry* registry_;
  std::map<std::string, std::uint64_t> baseline_;
  std::map<std::string, std::uint64_t> latest_;
  std::map<std::string, double> peaks_;
  std::size_t samples_ = 0;
};

}  // namespace grca::obs
