// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/export.h"

#include <cstdio>
#include <sstream>

namespace grca::obs {

namespace {

/// %g-style but always parseable; Prometheus accepts scientific notation.
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string format_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// "name{a=\"b\"}" + extra label -> "name{a=\"b\",le=\"5\"}".
std::string with_label(const std::string& base, const std::string& labels,
                       const std::string& suffix, const std::string& extra) {
  std::string out = base + suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

/// Help text for the metric families the platform emits; families not
/// listed fall back to a generic line so every family still carries HELP.
const char* family_help(const std::string& family) {
  static const std::map<std::string, const char*> kHelp = {
      {"grca_events_total", "Event instances added to the event store"},
      {"grca_diagnoses_total", "Symptom instances diagnosed"},
      {"grca_rule_evals_total", "Diagnosis-graph rule evaluations"},
      {"grca_evidence_matches_total", "Rules that produced joined evidence"},
      {"grca_diagnosis_seconds", "Wall time per symptom diagnosis"},
      {"grca_feed_records_total", "Raw records accepted per telemetry feed"},
      {"grca_feed_rejected_total", "Records rejected by the collector"},
      {"grca_feed_late_drops_total",
       "Records dropped behind the freeze horizon"},
      {"grca_feed_last_seen_utc_seconds",
       "Event time of the newest record per feed"},
      {"grca_feed_gap_seconds", "Stream-clock silence per feed"},
      {"grca_feed_silent", "1 when a feed is silent beyond its cadence"},
      {"grca_feed_lag_seconds", "Arrival lag (arrival - event time)"},
      {"grca_freeze_lag_seconds", "Stream high-water minus freeze cut"},
      {"grca_streaming_queue_depth", "Diagnosis jobs queued to workers"},
      {"grca_streaming_batch_seconds", "Wall time per diagnosis batch"},
      {"grca_streaming_batch_size", "Symptoms per diagnosis batch"},
      {"grca_http_connections_total", "HTTP connections accepted"},
      {"grca_http_requests_total", "HTTP requests served"},
      {"grca_http_active_connections", "Currently open HTTP connections"},
      {"grca_service_scrapes_total", "GET /metrics scrapes served"},
      {"grca_service_api_requests_total", "GET /api/* requests served"},
      {"grca_alerts_raised_total", "Feed-health alarms raised"},
      {"grca_alert_events_injected_total",
       "Missing-data events synthesized by the alert engine"},
      {"grca_alerts_active", "Feed-health alarms currently active"},
  };
  auto it = kHelp.find(family);
  return it == kHelp.end() ? "G-RCA metric" : it->second;
}

void family_header(std::ostringstream& out, std::string& last_family,
                   const std::string& family, const char* type) {
  if (family == last_family) return;
  last_family = family;
  out << "# HELP " << family << ' ' << family_help(family) << '\n';
  out << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

std::pair<std::string, std::string> split_labels(const std::string& name) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string prometheus_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_label(const std::string& base, const std::string& key,
                             const std::string& value) {
  return base + '{' + key + "=\"" + prometheus_escape_label_value(value) +
         "\"}";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  MetricsRegistry::Snapshot snap = registry.snapshot();
  std::ostringstream out;
  std::string last_family;
  for (const auto& [name, value] : snap.counters) {
    auto [base, labels] = split_labels(name);
    family_header(out, last_family, base, "counter");
    out << with_label(base, labels, "", "") << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    auto [base, labels] = split_labels(name);
    family_header(out, last_family, base, "gauge");
    out << with_label(base, labels, "", "") << ' ' << format_value(value)
        << '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    auto [base, labels] = split_labels(name);
    family_header(out, last_family, base, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.data.buckets[i];
      out << with_label(base, labels, "_bucket",
                        "le=\"" + format_bound(hist.bounds[i]) + "\"")
          << ' ' << cumulative << '\n';
    }
    out << with_label(base, labels, "_bucket", "le=\"+Inf\"") << ' '
        << hist.data.count << '\n';
    out << with_label(base, labels, "_sum", "") << ' '
        << format_value(hist.data.sum) << '\n';
    out << with_label(base, labels, "_count", "") << ' ' << hist.data.count
        << '\n';
  }
  return out.str();
}

std::string render_json(const MetricsRegistry& registry) {
  MetricsRegistry::Snapshot snap = registry.snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << format_value(value);
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {";
    out << "\n      \"bounds\": [";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      out << (i ? ", " : "") << format_value(hist.bounds[i]);
    }
    out << "],\n      \"buckets\": [";
    for (std::size_t i = 0; i < hist.data.buckets.size(); ++i) {
      out << (i ? ", " : "") << hist.data.buckets[i];
    }
    out << "],\n      \"count\": " << hist.data.count
        << ",\n      \"sum\": " << format_value(hist.data.sum)
        << "\n    }";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

}  // namespace grca::obs
