// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/export.h"

#include <cstdio>
#include <sstream>

namespace grca::obs {

namespace {

/// %g-style but always parseable; Prometheus accepts scientific notation.
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string format_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// "name{a=\"b\"}" + extra label -> "name{a=\"b\",le=\"5\"}".
std::string with_label(const std::string& base, const std::string& labels,
                       const std::string& suffix, const std::string& extra) {
  std::string out = base + suffix;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void type_header(std::ostringstream& out, std::string& last_family,
                 const std::string& family, const char* type) {
  if (family == last_family) return;
  last_family = family;
  out << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

std::pair<std::string, std::string> split_labels(const std::string& name) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& registry) {
  MetricsRegistry::Snapshot snap = registry.snapshot();
  std::ostringstream out;
  std::string last_family;
  for (const auto& [name, value] : snap.counters) {
    auto [base, labels] = split_labels(name);
    type_header(out, last_family, base, "counter");
    out << with_label(base, labels, "", "") << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    auto [base, labels] = split_labels(name);
    type_header(out, last_family, base, "gauge");
    out << with_label(base, labels, "", "") << ' ' << format_value(value)
        << '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    auto [base, labels] = split_labels(name);
    type_header(out, last_family, base, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.data.buckets[i];
      out << with_label(base, labels, "_bucket",
                        "le=\"" + format_bound(hist.bounds[i]) + "\"")
          << ' ' << cumulative << '\n';
    }
    out << with_label(base, labels, "_bucket", "le=\"+Inf\"") << ' '
        << hist.data.count << '\n';
    out << with_label(base, labels, "_sum", "") << ' '
        << format_value(hist.data.sum) << '\n';
    out << with_label(base, labels, "_count", "") << ' ' << hist.data.count
        << '\n';
  }
  return out.str();
}

std::string render_json(const MetricsRegistry& registry) {
  MetricsRegistry::Snapshot snap = registry.snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << format_value(value);
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {";
    out << "\n      \"bounds\": [";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      out << (i ? ", " : "") << format_value(hist.bounds[i]);
    }
    out << "],\n      \"buckets\": [";
    for (std::size_t i = 0; i < hist.data.buckets.size(); ++i) {
      out << (i ? ", " : "") << hist.data.buckets[i];
    }
    out << "],\n      \"count\": " << hist.data.count
        << ",\n      \"sum\": " << format_value(hist.data.sum)
        << "\n    }";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

}  // namespace grca::obs
