// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// RAII trace spans. A ScopedSpan measures the wall time of one pipeline
// stage (normalize, extract, correlate, diagnose; streaming freeze / settle
// / diagnose) and records it into the stage's latency histogram
// `grca_stage_seconds{stage="<name>"}` on destruction. When a span log is
// attached (set_span_log), every completed span additionally appends one
// JSONL line — enough to reconstruct a flame-style view of a run offline.
//
// Spans are deliberately coarse (stages, not per-record work): a span costs
// two steady_clock reads plus one histogram observe, so wrapping a stage
// that runs for milliseconds is free. The span log serializes appends under
// a mutex; attach it only for offline analysis runs.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace grca::obs {

/// Opens `path` (truncating) as the process-wide JSONL span sink; an empty
/// path detaches it. Returns false when the file cannot be opened.
bool set_span_log(const std::string& path);

/// True when a span log is attached.
bool span_log_attached() noexcept;

class ScopedSpan {
 public:
  /// Records into `registry` (or the installed default when omitted).
  /// A null registry makes the span a no-op timer.
  explicit ScopedSpan(std::string_view stage,
                      MetricsRegistry* registry = registry_ptr());

  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now (idempotent); returns the elapsed seconds.
  double stop();

 private:
  std::string stage_;
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  double elapsed_ = 0.0;
  bool stopped_ = false;
};

}  // namespace grca::obs
