// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The observability metrics registry. The paper's G-RCA ran as an always-on
// platform against ~600 production feeds, where "is the data flowing and is
// diagnosis keeping up?" was a first-class operational question. This module
// provides the primitives the rest of the platform reports into:
//
//  - Counter:   monotonically increasing, sharded over cache-line-padded
//               atomics so concurrent hot-path increments (8+ diagnosis
//               workers) never contend on one cache line;
//  - Gauge:     a last-written value (queue depth, freeze-horizon lag);
//  - Histogram: fixed upper-bucket-bound distribution (latencies, batch
//               sizes), sharded like counters.
//
// Naming convention: Prometheus-style `snake_case_total` names, with an
// optional label set appended verbatim — e.g.
// `grca_collector_records_total{source="syslog"}`. The exporters
// (obs/export.h) split the label block off the name, so one registry entry
// per (metric, label-value) pair is the model (exactly how client libraries
// store label children).
//
// Threading contract: metric mutation (inc/set/observe) is lock-free and
// safe from any thread. Registration (counter()/gauge()/histogram()) takes
// the registry mutex and returns a reference that remains valid for the
// registry's lifetime. Reads (value()/snapshot()) are safe concurrently
// with writers; they see a value at least as fresh as the last write that
// happened-before the read, which is all an exporter needs.
//
// A process-wide default registry is installed at startup so binaries get
// metrics with zero setup; install_registry(nullptr) disables every
// instrumentation site that is constructed afterwards (instrumented code
// holds plain pointers and skips null), which is the "compiled to
// near-nothing" off switch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace grca::obs {

/// Shard count for counters and histograms. A small power of two: enough
/// that 8-16 diagnosis workers rarely collide, small enough that summing a
/// metric stays trivial.
inline constexpr std::size_t kShards = 16;

namespace detail {
/// Stable per-thread shard index (round-robin assigned on first use).
std::size_t shard_index() noexcept;
}  // namespace detail

/// A monotonically increasing counter, sharded over padded atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A last-written value. set() is a plain atomic store; add() is a
/// fetch-add. Single 8-byte slot — gauges are updated from coordinator
/// threads (tick loops), not per-record hot paths.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bucket bounds in
/// ascending order; an implicit +Inf bucket catches the rest. Bucket
/// counts, the observation count and the sum are all sharded.
class Histogram {
 public:
  /// Default bounds suited to seconds-scale latencies (1 µs .. 60 s).
  static const std::vector<double>& default_latency_bounds();

  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // per-bound + final +Inf bucket
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Named metric storage. Metrics are created on first request and live as
/// long as the registry; requesting an existing name returns the same
/// object (so independent components share e.g. one diagnosis counter).
/// Requesting a name already registered as a different kind throws
/// ConfigError.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only when the histogram does not exist yet; empty
  /// selects Histogram::default_latency_bounds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// A consistent, name-ordered view for the exporters. Values are read
  /// with relaxed atomics; concurrent writers are fine.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    struct Hist {
      std::vector<double> bounds;
      Histogram::Snapshot data;
    };
    std::map<std::string, Hist> histograms;
  };
  Snapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide default registry (constructed on first use).
MetricsRegistry& default_registry();

/// The currently installed registry, or nullptr when observability is
/// disabled. Instrumented components read this once at construction.
MetricsRegistry* registry_ptr() noexcept;

/// Installs `registry` as the process-wide registry (nullptr disables
/// instrumentation for components constructed afterwards). Returns the
/// previously installed registry.
MetricsRegistry* install_registry(MetricsRegistry* registry) noexcept;

/// Hit/miss/size instrumentation bundle for memo caches, resolved from the
/// currently installed registry as `<prefix>_hits` / `<prefix>_misses`
/// (counters) and `<prefix>_entries` (gauge). All-or-nothing like the other
/// instrumentation sites: when observability is disabled every pointer is
/// null, so callers null-check one member.
struct CacheMetrics {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Gauge* entries = nullptr;

  static CacheMetrics resolve(const std::string& prefix);
};

/// RAII install-then-restore, for tests that want a private registry.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry* registry)
      : previous_(install_registry(registry)) {}
  ~ScopedRegistry() { install_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace grca::obs
