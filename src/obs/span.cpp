// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "obs/span.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>

namespace grca::obs {

namespace {

/// The process-wide span log: a mutex-guarded append-only JSONL stream.
struct SpanLog {
  std::mutex mutex;
  std::ofstream out;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<bool> attached{false};
};

SpanLog& span_log() {
  static SpanLog log;
  return log;
}

}  // namespace

bool set_span_log(const std::string& path) {
  SpanLog& log = span_log();
  std::lock_guard lock(log.mutex);
  if (log.out.is_open()) log.out.close();
  log.attached.store(false, std::memory_order_release);
  if (path.empty()) return true;
  log.out.open(path, std::ios::trunc);
  if (!log.out) return false;
  log.epoch = std::chrono::steady_clock::now();
  log.attached.store(true, std::memory_order_release);
  return true;
}

bool span_log_attached() noexcept {
  return span_log().attached.load(std::memory_order_acquire);
}

ScopedSpan::ScopedSpan(std::string_view stage, MetricsRegistry* registry)
    : stage_(stage), start_(std::chrono::steady_clock::now()) {
  if (registry) {
    histogram_ =
        &registry->histogram("grca_stage_seconds{stage=\"" + stage_ + "\"}");
  }
}

double ScopedSpan::stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  auto end = std::chrono::steady_clock::now();
  elapsed_ = std::chrono::duration<double>(end - start_).count();
  if (histogram_) histogram_->observe(elapsed_);
  SpanLog& log = span_log();
  if (log.attached.load(std::memory_order_acquire)) {
    std::lock_guard lock(log.mutex);
    if (log.out.is_open()) {
      auto start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          start_ - log.epoch)
                          .count();
      auto dur_us = static_cast<long long>(elapsed_ * 1e6);
      char line[192];
      std::snprintf(line, sizeof(line),
                    "{\"span\":\"%s\",\"start_us\":%lld,\"dur_us\":%lld}\n",
                    stage_.c_str(), static_cast<long long>(start_us), dur_us);
      log.out << line;
      log.out.flush();
    }
  }
  return elapsed_;
}

}  // namespace grca::obs
