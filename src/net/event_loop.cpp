// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace grca::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw StateError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!epoll_.valid()) throw_errno("epoll_create1");
  if (!wake_.valid()) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: stays readable until drained
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) < 0) {
    throw_errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(add)");
  }
  handlers_[fd] = std::move(cb);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::remove(int fd) {
  // Removing an already-closed fd is tolerated (the connection close path
  // may race the kernel having dropped the registration with the fd).
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  if (dispatching_) retired_.push_back(std::move(it->second));
  handlers_.erase(it);
}

void EventLoop::run(const std::function<void()>& tick, int tick_interval_ms) {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stopped_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_.get(), events, kMaxEvents,
                         tick ? tick_interval_ms : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    if (n == 0) {
      if (tick) tick();
      continue;
    }
    dispatching_ = true;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_.get()) {
        std::uint64_t drained = 0;
        while (::read(wake_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // The handler may have been removed by an earlier callback in this
      // same round (e.g. the peer half of a proxied pair); skip it then.
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second(events[i].events);
    }
    dispatching_ = false;
    retired_.clear();
  }
}

void EventLoop::stop() noexcept {
  stopped_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result is ignorable.
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
}

}  // namespace grca::net
