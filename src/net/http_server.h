// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// An embedded epoll HTTP/1.1 server. N loop threads each own an epoll
// reactor and a SO_REUSEPORT listener on the shared port; the kernel
// balances incoming connections across them. Connections are edge-triggered
// and non-blocking end to end: accept and read loops drain to EAGAIN, the
// handler produces a response synchronously (handlers read prebuilt
// snapshots — see service/service_plane.h — so they are microseconds, never
// blocking on the ingest path), and writes that hit a full socket buffer
// park the remainder behind EPOLLOUT.
//
// The handler is called on loop threads, possibly several concurrently (one
// per loop thread); it must be thread-safe and must not block.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/http.h"
#include "obs/metrics.h"

namespace grca::net {

struct HttpServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Loop threads, each with its own epoll instance and listener.
  unsigned threads = 1;
  /// Bind only the loopback interface (the default: the service plane is a
  /// local scrape/query endpoint, not an internet-facing server).
  bool loopback_only = true;
  /// Idle connections are closed after this many seconds without a request.
  int idle_timeout_s = 60;
  /// Hard cap on concurrently open connections per loop thread; accepts
  /// beyond it are immediately closed (defends the fd budget).
  std::size_t max_connections_per_loop = 16384;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Handler handler, HttpServerOptions options = {});
  /// stop()s and joins if still running.
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds the listeners and starts the loop threads. Throws StateError if
  /// the port cannot be bound.
  void start();

  /// Closes the listeners, wakes every loop, joins the threads and closes
  /// all connections. Idempotent.
  void stop();

  /// The bound port (valid after start(); resolves an ephemeral bind).
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept { return running_.load(); }

  /// Totals across all loop threads; survive stop()/restart cycles.
  std::uint64_t connections_accepted() const noexcept;
  std::uint64_t requests_served() const noexcept;

 private:
  struct Loop;  // per-thread reactor state (defined in http_server.cpp)

  Handler handler_;
  HttpServerOptions options_;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  // Counts carried over from loops already torn down by stop().
  std::uint64_t accepted_before_ = 0;
  std::uint64_t served_before_ = 0;

  // Server-level instrumentation (null without an installed registry).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
};

}  // namespace grca::net
