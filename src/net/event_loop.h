// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// A small single-threaded epoll reactor (the io-event selector idiom): file
// descriptors are registered edge-triggered with a callback, run() blocks in
// epoll_wait dispatching ready callbacks until stop() is called from any
// thread (an eventfd wakes the loop). Edge-triggered means a callback must
// drain its descriptor to EAGAIN before returning — the loop will not
// re-report a level that was never cleared.
//
// One EventLoop is owned and run by exactly one thread; add/modify/remove
// are called from that thread only (callbacks registering new descriptors —
// an acceptor registering connections — is the normal case). stop() is the
// single cross-thread entry point.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/socket.h"

namespace grca::net {

class EventLoop {
 public:
  /// Callback for descriptor readiness; `events` is the epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits).
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` edge-triggered for `events` (EPOLLIN and/or EPOLLOUT;
  /// EPOLLET is added internally). The loop does not own the descriptor.
  void add(int fd, std::uint32_t events, Callback cb);

  /// Changes the interest mask of a registered descriptor.
  void modify(int fd, std::uint32_t events);

  /// Deregisters `fd`. Safe to call from inside its own callback; the
  /// callback object stays alive until the dispatch that invoked it returns.
  void remove(int fd);

  /// Dispatches events until stop(). `tick` (if set) additionally runs every
  /// `tick_interval_ms` of idle time — the server uses it for timeouts.
  void run(const std::function<void()>& tick = {}, int tick_interval_ms = 500);

  /// Wakes the loop and makes run() return after the current dispatch round.
  /// Callable from any thread.
  void stop() noexcept;

  /// Number of registered descriptors (excludes the internal wakeup fd).
  std::size_t size() const noexcept { return handlers_.size(); }

 private:
  Fd epoll_;
  Fd wake_;  // eventfd: written by stop(), drained by the loop
  std::unordered_map<int, Callback> handlers_;
  /// Retired callbacks parked until the current dispatch round ends, so a
  /// handler may remove() (and thereby destroy) itself mid-call safely.
  std::vector<Callback> retired_;
  bool dispatching_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace grca::net
