// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Minimal HTTP/1.1 message layer for the service plane: an incremental
// request parser (per-connection state machine — bytes arrive in arbitrary
// chunks from an edge-triggered socket) and a response serializer. Scope is
// exactly what a scrape/query endpoint needs: GET/HEAD with headers and an
// optional Content-Length body, keep-alive and pipelining, percent-decoded
// paths and query strings. No chunked transfer, no TLS, no compression.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace grca::net {

/// One parsed request. Header names are lowercased; query values are
/// percent-decoded ('+' decodes to space, as form encoding sends it).
struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // raw request target, e.g. "/api/breakdown?from=1"
  std::string path;     // decoded path component, e.g. "/api/breakdown"
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Whether the connection should stay open after the response (HTTP/1.1
  /// default unless "connection: close"; HTTP/1.0 requires keep-alive).
  bool keep_alive = true;

  /// Convenience lookup; empty string when the query key is absent.
  const std::string& query_value(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// The reason phrase for the handful of status codes the server emits.
const char* status_text(int status) noexcept;

/// Serializes a response. HEAD responses carry full headers (including the
/// real Content-Length) but no body.
std::string serialize(const HttpResponse& response, bool keep_alive,
                      bool head_only);

/// Percent-decodes a URL component; '+' becomes a space when `form`.
/// Malformed escapes are passed through verbatim.
std::string url_decode(const std::string& text, bool form);

/// Incremental HTTP/1.1 request parser. feed() consumes bytes; whenever a
/// complete request has been assembled, next() hands it out (pipelined
/// requests queue up in order). A protocol violation or an exceeded limit
/// moves the parser into the error state permanently; the connection should
/// send `error_status()` and close.
class HttpParser {
 public:
  /// Defense against hostile peers: a request line + headers beyond this
  /// size is rejected with 431, a body beyond the cap with 413.
  static constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

  /// Consumes a chunk of bytes. Returns false once the parser is in the
  /// error state (further bytes are ignored).
  bool feed(const char* data, std::size_t size);

  /// True when at least one complete request is ready.
  bool has_request() const noexcept { return !ready_.empty(); }

  /// Pops the oldest complete request.
  HttpRequest next();

  bool errored() const noexcept { return errored_; }
  int error_status() const noexcept { return error_status_; }

 private:
  void parse_buffer();
  bool parse_head(const std::string& head);
  void fail(int status) noexcept;

  std::string buffer_;
  HttpRequest current_;
  std::size_t body_needed_ = 0;
  bool in_body_ = false;
  std::vector<HttpRequest> ready_;
  std::size_t ready_front_ = 0;
  bool errored_ = false;
  int error_status_ = 400;
};

}  // namespace grca::net
