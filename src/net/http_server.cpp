// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "net/http_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/socket.h"
#include "util/error.h"

namespace grca::net {

namespace {

std::uint64_t steady_seconds() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One reactor thread: an event loop, its SO_REUSEPORT listener, and the
/// connections the kernel routed to it. All fields except the shared
/// counters are touched only by the owning thread.
struct HttpServer::Loop {
  struct Connection {
    Fd fd;
    HttpParser parser;
    std::string outbox;          // bytes serialized but not yet written
    std::size_t out_pos = 0;     // prefix of outbox already written
    bool want_writable = false;  // EPOLLOUT currently in the interest mask
    bool close_after_flush = false;
    std::uint64_t last_activity_s = 0;
  };

  EventLoop loop;
  Fd listener;
  std::unordered_map<int, Connection> connections;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> served{0};
  HttpServer* server = nullptr;

  void run() {
    loop.add(listener.get(), EPOLLIN, [this](std::uint32_t) { accept_all(); });
    loop.run([this] { reap_idle(); });
    // Loop exited: drop every connection so fds return to the system.
    for (auto& [fd, conn] : connections) loop.remove(fd);
    connections.clear();
  }

  void accept_all() {
    for (;;) {
      int raw = ::accept4(listener.get(), nullptr, nullptr,
                          SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // EMFILE/ECONNABORTED and friends: drop this accept, keep serving.
        return;
      }
      if (connections.size() >= server->options_.max_connections_per_loop) {
        ::close(raw);
        continue;
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      if (server->connections_total_) server->connections_total_->inc();
      if (server->active_connections_) server->active_connections_->add(1);
      Connection conn;
      conn.fd = Fd(raw);
      conn.last_activity_s = steady_seconds();
      auto [it, inserted] = connections.emplace(raw, std::move(conn));
      (void)inserted;
      loop.add(raw, EPOLLIN,
               [this, raw](std::uint32_t events) { on_event(raw, events); });
    }
  }

  void on_event(int fd, std::uint32_t events) {
    auto it = connections.find(fd);
    if (it == connections.end()) return;  // stale event after close
    Connection& conn = it->second;
    conn.last_activity_s = steady_seconds();
    if (events & (EPOLLHUP | EPOLLERR)) {
      close_connection(it);
      return;
    }
    if (events & EPOLLOUT) {
      if (!flush(it)) return;  // connection closed
      it = connections.find(fd);
      if (it == connections.end()) return;
    }
    if (events & EPOLLIN) read_all(it);
  }

  void read_all(std::unordered_map<int, Connection>::iterator it) {
    Connection& conn = it->second;
    char buf[16 * 1024];
    for (;;) {
      ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
      if (n > 0) {
        if (!conn.parser.feed(buf, static_cast<std::size_t>(n))) {
          // Protocol violation: answer with the parser's status and close
          // once the error response has drained.
          HttpResponse err;
          err.status = conn.parser.error_status();
          err.content_type = "text/plain; charset=utf-8";
          err.body = status_text(err.status);
          err.body += "\n";
          conn.outbox += serialize(err, /*keep_alive=*/false,
                                   /*head_only=*/false);
          conn.close_after_flush = true;
          flush(it);
          return;
        }
        continue;
      }
      if (n == 0) {
        // Peer closed its write half; finish flushing, then close.
        if (conn.out_pos < conn.outbox.size()) {
          conn.close_after_flush = true;
          flush(it);
        } else {
          close_connection(it);
        }
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(it);
      return;
    }
    dispatch_ready(it);
  }

  void dispatch_ready(std::unordered_map<int, Connection>::iterator it) {
    Connection& conn = it->second;
    while (conn.parser.has_request()) {
      HttpRequest request = conn.parser.next();
      served.fetch_add(1, std::memory_order_relaxed);
      if (server->requests_total_) server->requests_total_->inc();
      HttpResponse response;
      if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.content_type = "text/plain; charset=utf-8";
        response.body = "Method Not Allowed\n";
      } else {
        try {
          response = server->handler_(request);
        } catch (const std::exception& e) {
          response = HttpResponse{};
          response.status = 500;
          response.content_type = "text/plain; charset=utf-8";
          response.body = std::string("internal error: ") + e.what() + "\n";
        }
      }
      bool keep = request.keep_alive;
      conn.outbox +=
          serialize(response, keep, /*head_only=*/request.method == "HEAD");
      if (!keep) {
        conn.close_after_flush = true;
        break;
      }
    }
    flush(it);
  }

  /// Writes as much of the outbox as the socket accepts. Returns false when
  /// the connection was closed (erased from the map).
  bool flush(std::unordered_map<int, Connection>::iterator it) {
    Connection& conn = it->second;
    while (conn.out_pos < conn.outbox.size()) {
      ssize_t n = ::write(conn.fd.get(), conn.outbox.data() + conn.out_pos,
                          conn.outbox.size() - conn.out_pos);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_writable) {
          conn.want_writable = true;
          loop.modify(conn.fd.get(), EPOLLIN | EPOLLOUT);
        }
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      close_connection(it);
      return false;
    }
    // Fully drained: recycle the buffer and drop write interest.
    conn.outbox.clear();
    conn.out_pos = 0;
    if (conn.want_writable) {
      conn.want_writable = false;
      loop.modify(conn.fd.get(), EPOLLIN);
    }
    if (conn.close_after_flush) {
      close_connection(it);
      return false;
    }
    return true;
  }

  void close_connection(std::unordered_map<int, Connection>::iterator it) {
    loop.remove(it->second.fd.get());
    connections.erase(it);
    if (server->active_connections_) server->active_connections_->add(-1);
  }

  void reap_idle() {
    if (server->options_.idle_timeout_s <= 0) return;
    const std::uint64_t now = steady_seconds();
    const std::uint64_t limit =
        static_cast<std::uint64_t>(server->options_.idle_timeout_s);
    for (auto it = connections.begin(); it != connections.end();) {
      auto cur = it++;
      if (now - cur->second.last_activity_s > limit) close_connection(cur);
    }
  }
};

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
  if (obs::MetricsRegistry* reg = obs::registry_ptr()) {
    connections_total_ = &reg->counter("grca_http_connections_total");
    requests_total_ = &reg->counter("grca_http_requests_total");
    active_connections_ = &reg->gauge("grca_http_active_connections");
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.exchange(true)) return;
  ignore_sigpipe();
  const bool reuse_port = options_.threads > 1;
  loops_.clear();
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->server = this;
    // The first bind resolves an ephemeral port; the rest share it.
    std::uint16_t bind_port = i == 0 ? options_.port : port_;
    loop->listener = listen_tcp(bind_port, reuse_port, options_.loopback_only);
    if (i == 0) port_ = local_port(loop->listener.get());
    loops_.push_back(std::move(loop));
  }
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([raw = loop.get()] { raw->run(); });
  }
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  for (auto& loop : loops_) loop->loop.stop();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  for (const auto& loop : loops_) {
    accepted_before_ += loop->accepted.load(std::memory_order_relaxed);
    served_before_ += loop->served.load(std::memory_order_relaxed);
  }
  threads_.clear();
  loops_.clear();
}

std::uint64_t HttpServer::connections_accepted() const noexcept {
  std::uint64_t total = accepted_before_;
  for (const auto& loop : loops_) {
    total += loop->accepted.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t HttpServer::requests_served() const noexcept {
  std::uint64_t total = served_before_;
  for (const auto& loop : loops_) {
    total += loop->served.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace grca::net
