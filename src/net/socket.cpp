// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace grca::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw StateError(what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

Fd listen_tcp(std::uint16_t port, bool reuse_port, bool loopback_only,
              int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuse_port && ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                                 sizeof(one)) < 0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return fd;
}

void ignore_sigpipe() noexcept { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace grca::net
