// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Thin, dependency-free POSIX socket helpers for the service plane: an RAII
// file-descriptor owner and the handful of TCP operations the HTTP server
// and its tests need (non-blocking listeners, loopback client connects).
// Everything is IPv4 loopback/any-address TCP — the service plane fronts a
// single process, not a routing mesh.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace grca::net {

/// Owns one file descriptor; closes it on destruction. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode. Throws StateError on failure.
void set_nonblocking(int fd);

/// Opens a non-blocking TCP listener on `port` (0 picks an ephemeral port).
/// `reuse_port` sets SO_REUSEPORT so several loop threads can each own a
/// listener on the same port and let the kernel balance accepts. Binds the
/// loopback interface when `loopback_only`, the any-address otherwise.
/// Throws StateError on failure.
Fd listen_tcp(std::uint16_t port, bool reuse_port, bool loopback_only,
              int backlog = 511);

/// The port a bound socket ended up on (resolves ephemeral binds).
std::uint16_t local_port(int fd);

/// Blocking loopback connect, for tests and simple clients.
Fd connect_loopback(std::uint16_t port);

/// Ignores SIGPIPE process-wide (a peer closing mid-write must surface as
/// EPIPE from write(), not kill the process). Idempotent.
void ignore_sigpipe() noexcept;

}  // namespace grca::net
