// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace grca::net {

namespace {

const std::string kEmpty;

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string& HttpRequest::query_value(const std::string& key) const {
  auto it = query.find(key);
  return it == query.end() ? kEmpty : it->second;
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize(const HttpResponse& response, bool keep_alive,
                      bool head_only) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

std::string url_decode(const std::string& text, bool form) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%' && i + 2 < text.size()) {
      int hi = hex_digit(text[i + 1]);
      int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    if (form && c == '+') {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

bool HttpParser::feed(const char* data, std::size_t size) {
  if (errored_) return false;
  buffer_.append(data, size);
  parse_buffer();
  return !errored_;
}

HttpRequest HttpParser::next() {
  HttpRequest out = std::move(ready_[ready_front_]);
  ++ready_front_;
  if (ready_front_ == ready_.size()) {
    ready_.clear();
    ready_front_ = 0;
  }
  return out;
}

void HttpParser::fail(int status) noexcept {
  errored_ = true;
  error_status_ = status;
  buffer_.clear();
}

void HttpParser::parse_buffer() {
  for (;;) {
    if (in_body_) {
      if (buffer_.size() < body_needed_) return;
      current_.body = buffer_.substr(0, body_needed_);
      buffer_.erase(0, body_needed_);
      in_body_ = false;
      ready_.push_back(std::move(current_));
      current_ = HttpRequest{};
      continue;
    }
    std::size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) fail(431);
      return;
    }
    std::string head = buffer_.substr(0, end);
    buffer_.erase(0, end + 4);
    if (head.size() > kMaxHeaderBytes) {
      fail(431);
      return;
    }
    if (!parse_head(head)) return;  // fail() already recorded the status
    if (body_needed_ > 0) {
      if (body_needed_ > kMaxBodyBytes) {
        fail(413);
        return;
      }
      in_body_ = true;
      continue;
    }
    ready_.push_back(std::move(current_));
    current_ = HttpRequest{};
  }
}

bool HttpParser::parse_head(const std::string& head) {
  current_ = HttpRequest{};
  body_needed_ = 0;
  std::size_t line_end = head.find("\r\n");
  std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  std::vector<std::string> parts = util::split_ws(request_line);
  if (parts.size() != 3) {
    fail(400);
    return false;
  }
  current_.method = parts[0];
  current_.target = parts[1];
  const std::string& version = parts[2];
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail(400);
    return false;
  }
  bool http11 = version == "HTTP/1.1";

  // Split the target into path and query string.
  std::size_t qmark = current_.target.find('?');
  current_.path = url_decode(current_.target.substr(0, qmark), false);
  if (qmark != std::string::npos) {
    for (const std::string& pair :
         util::split(current_.target.substr(qmark + 1), '&')) {
      if (pair.empty()) continue;
      std::size_t eq = pair.find('=');
      std::string key = url_decode(pair.substr(0, eq), true);
      std::string value =
          eq == std::string::npos ? "" : url_decode(pair.substr(eq + 1), true);
      current_.query[std::move(key)] = std::move(value);
    }
  }

  // Header lines. Continuation folding is obsolete; a malformed line fails.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next_pos = head.find("\r\n", pos);
    std::string line = head.substr(
        pos, next_pos == std::string::npos ? std::string::npos
                                           : next_pos - pos);
    pos = next_pos == std::string::npos ? head.size() : next_pos + 2;
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      fail(400);
      return false;
    }
    std::string name = util::to_lower(util::trim(line.substr(0, colon)));
    std::string value(util::trim(line.substr(colon + 1)));
    current_.headers[std::move(name)] = std::move(value);
  }

  if (auto it = current_.headers.find("content-length");
      it != current_.headers.end()) {
    try {
      body_needed_ = std::stoul(it->second);
    } catch (const std::exception&) {
      fail(400);
      return false;
    }
  }

  std::string connection;
  if (auto it = current_.headers.find("connection");
      it != current_.headers.end()) {
    connection = util::to_lower(it->second);
  }
  current_.keep_alive =
      http11 ? connection != "close" : connection == "keep-alive";
  return true;
}

}  // namespace grca::net
