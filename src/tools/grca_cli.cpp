// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// `grca` — the operator-facing command-line tool.
//
//   grca dump-library
//       Print the Knowledge Library (Table I events, Table II rules).
//
//   grca simulate --study bgp|cdn|pim|innet --out DIR
//                 [--days N] [--symptoms N] [--seed S] [--paper-scale]
//                 [--store-out DIR]
//       Generate a synthetic ISP + study workload; write the router config
//       snapshots, the layer-1 inventory, the raw telemetry archive and the
//       ground-truth labels under DIR. --store-out additionally runs the
//       collector once and persists the extracted event store as a sealed
//       segmented event log (see docs/STORAGE.md), which `diagnose --store`
//       can reopen without re-extracting.
//
//   grca diagnose --study bgp|cdn|pim|innet --data DIR
//                 [--dsl FILE]... [--threads N] [--trend] [--score]
//                 [--drill CAUSE] [--metrics-out FILE] [--store DIR]
//                 [--span-log FILE]
//       Rebuild the network from DIR's configs, replay the telemetry
//       archive, run the study's RCA application (plus any extra DSL
//       files), and print the root-cause breakdown. --threads fans
//       per-symptom diagnosis out over N workers (default: hardware
//       concurrency; 1 = serial — same output either way). --score
//       compares against DIR/truth.tsv; --drill prints one drill-down for
//       the given diagnosed cause ("unknown" works). --metrics-out dumps
//       the metrics registry after the run (FILE ending in .json selects
//       JSON, anything else Prometheus text). --store serves events from a
//       persisted event log (mmap-backed) instead of re-extracting them —
//       verdicts are byte-identical either way. --span-log records stage
//       spans as JSONL (convert with `grca spans`).
//
//   grca metrics --study bgp|cdn|pim|innet --data DIR [--threads N]
//                [--format prometheus|json]
//       Run the same pipeline + diagnosis as `diagnose`, but print the
//       metrics registry instead of the breakdown: per-source feed
//       counts/lag/gaps, per-stage latency histograms, engine counters.
//
//   grca calibrate --study bgp|cdn|pim --data DIR [--store DIR]
//                  --symptom EVENT --diagnostic EVENT --join LEVEL
//       Learn temporal margins for a rule from the archived data (§VI).
//       --store reads events from a persisted event log instead of
//       re-extracting, matching `diagnose --store`.
//
//   grca learn (--study bgp|cdn|pim|innet --data DIR [--store DIR]
//              | --topology FILE --scenario CLASS [--days N] [--symptoms N]
//                [--noise X] [--pers N] [--customers N])
//              [--seed S] [--ablate SYM->DIAG]... [--dsl FILE]...
//              [--max-iterations N] [--budget N] [--min-score X] [--alpha X]
//              [--permutations N] [--threads N] [--deterministic]
//              [--out FILE] [--gate-out FILE] [--rules-out FILE]
//              [--metrics-out FILE] [--span-log FILE]
//       Close the §II-E rule-learning loop: diagnose the corpus against the
//       current rule library, mine the unknown residue with the NICE
//       correlation tester, propose candidate rules (join-level search +
//       temporal calibration), re-score against ground truth and accept
//       only candidates that improve held-out F1 — until an iteration
//       accepts nothing or the candidate budget runs out. Input is either a
//       recorded corpus (--study/--data, optionally --store) or a
//       regenerated benchmark cell (--topology/--scenario, same seeds as
//       `grca benchmark`). --ablate drops rules from the starting library
//       first (the rule-ablation benchmark: verify the loop re-learns
//       them). --out writes the per-iteration accuracy-curve report JSON,
//       --gate-out the flat metric map for tools/bench_diff.py, --rules-out
//       the accepted rules as reviewable DSL. --deterministic drops
//       wall-clock timing so every rendering is byte-stable.
//
//   grca replay [--study bgp|cdn|pim|innet] [--data DIR]
//               [--rate N[x]|max] [--ingest-threads N] [--workers N]
//               [--tick SEC] [--source-lag SEC] [--jitter SEC] [--seed S]
//               [--days N] [--symptoms N] [--report-out FILE]
//               [--metrics-out FILE] [--min-rate RECORDS_PER_MIN] [--no-truth]
//       Replay a recorded corpus (--data) or a freshly generated default
//       scenario through the streaming RCA engine at a scaled (or maximum)
//       rate, sharded over N ingest threads with seeded per-source arrival
//       skew, and print the replay report: throughput, ingest latency
//       percentiles, queue high-water, per-source feed health, the record
//       conservation check, and (unless --no-truth) ground-truth coverage
//       plus a streaming-vs-batch verdict diff. Exits nonzero when a check
//       fails or the sustained rate is below --min-rate.
//
//   grca serve --study bgp|cdn|pim|innet [--data DIR] [--port N]
//              [--port-file FILE] [--http-threads N] [--api-dump DIR]
//              [--once] [--public] [--follow] [--rate N[x]|max] [--tick SEC]
//              [--idle-ticks N] [--alert-rules FILE] [--workers N]
//              [--persist DIR] [--persist-seal-every SEC]
//              [--persist-format v1|v2] [--days N] [--symptoms N] [--seed S]
//       Run a diagnosis and serve it over HTTP: GET /metrics (Prometheus
//       scrape), /api/breakdown, /api/trending, /api/drilldown/{cause},
//       /api/health, /api/alerts, /healthz. Default (batch) mode runs the
//       study once and serves the finished result; --follow streams the
//       corpus through the real-time engine at --rate, publishing a fresh
//       snapshot every --tick sim-seconds while the feed-health alert
//       engine (default rules or --alert-rules FILE) injects missing-data
//       evidence into the live diagnosis. --idle-ticks keeps the stream
//       clock advancing after the corpus ends (feeds go silent and the
//       alarms fire — the smoke test's trigger). --api-dump writes every
//       /api/* response to DIR through the exact handler the server uses,
//       so a live curl and the dump are byte-identical; --once exits after
//       the dump instead of serving. SIGINT/SIGTERM shut down gracefully:
//       the stream drains, the persistence watermark seals, listeners
//       close.
//
//   grca shard --study bgp|cdn|pim|innet --data DIR --store DIR
//              [--workers N] [--threads N] [--mode slice|filter]
//              [--slice-dir DIR] [--slice-format v1|v2] [--keep-slices]
//              [--retry-failed] [--dsl FILE]... [--metrics-out FILE]
//              [--fail-worker N] [--fail-after N]
//       Sharded multi-process diagnosis: partition the study's symptom
//       stream by location across N worker processes (forked from this
//       binary as `grca shard-worker`), each diagnosing off its own
//       re-sealed slice of the persistent store (--mode slice, default) or
//       the full store behind a location filter (--mode filter), then merge
//       the result frames by global sequence number. The breakdown printed
//       to stdout is byte-identical to `diagnose --study ... --data DIR
//       --store DIR` up to the mean-diagnosis-time line; the per-worker
//       status table goes to stderr. Exits nonzero when any worker fails
//       (per-worker status still printed); --retry-failed reruns failed
//       shards once — the partition is deterministic, so the rerun merges
//       byte-identically. --fail-worker/--fail-after are failure-injection
//       hooks for the tests (worker N aborts after emitting N results).
//
//   grca store inspect|verify|compact --dir DIR
//       Operate on a persisted event log. `inspect` prints per-segment
//       summaries (sequence, format, events, names, watermark, bytes; for
//       columnar v2 segments also dictionary and zone-map sizes plus
//       per-name run summaries: rows, blocks, start range, column-region
//       bytes — the shard-slice debugging view). `verify`
//       runs the full integrity sweep — header/footer/frame CRCs, v2
//       column-region CRCs, full structural decode — and exits nonzero on
//       any corruption; `--deep` additionally recomputes footer statistics
//       (max durations, v2 zone maps) from a full rescan. `compact` folds
//       every sealed segment plus the WAL's valid prefix into one segment
//       (query results unchanged; `--format v1|v2` picks the output
//       format, default v2 — the v1 -> v2 upgrade path).
//
//   grca spans --in FILE [--out FILE]
//       Convert a span JSONL log (from --span-log) into a Chrome trace
//       file: load the output into chrome://tracing or https://ui.perfetto.dev
//       for a flame-style view of the run's stages.
//
//   grca benchmark [--topology FILE]... [--topo-dir DIR] [--scenarios LIST]
//                  [--days N] [--symptoms N] [--seed S] [--threads N]
//                  [--noise X] [--pers N] [--customers N] [--out FILE]
//                  [--gate-out FILE] [--deterministic]
//       Run the RCAEval-style scorecard: import every --topology file (or
//       all *.graph files under --topo-dir, default bench/topologies) in
//       REPETITA flat-text format, generate each fault-scenario class on
//       each imported network (maintenance-storm, srlg-cut, route-leak,
//       gray-failure, cdn-flood — or the --scenarios comma list), diagnose
//       the corpus end-to-end, and print per-cell precision/recall/F1 plus
//       diagnosis throughput. --out writes the scorecard JSON; --gate-out
//       writes the flat metric map tools/bench_diff.py gates on.
//       --deterministic drops wall-clock throughput from all outputs so
//       they are byte-stable across machines (golden fixtures, CI gates).
//
//   grca version
//       Print the build version (also: grca --version).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <set>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "apps/benchmark.h"
#include "apps/bgp_flap_app.h"
#include "apps/cdn_app.h"
#include "apps/innet_app.h"
#include "apps/pim_app.h"
#include "apps/pipeline.h"
#include "apps/replay.h"
#include "apps/scoring.h"
#include "core/calibration.h"
#include "core/knowledge_library.h"
#include "core/rule_dsl.h"
#include "core/trending.h"
#include "learn/driver.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "service/alerts.h"
#include "service/service_plane.h"
#include "service/shutdown.h"
#include "shard/coordinator.h"
#include "shard/worker.h"
#include "simulation/archive.h"
#include "storage/event_log.h"
#include "storage/persistent_store.h"
#include "simulation/workloads.h"
#include "topology/import.h"
#include "topology/topo_gen.h"
#include "util/strings.h"

namespace fs = std::filesystem;
using namespace grca;

// Injected by src/tools/CMakeLists.txt (project version + git describe).
#ifndef GRCA_VERSION
#define GRCA_VERSION "unknown"
#endif

namespace {

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      R"(usage:
  grca dump-library
  grca simulate --study bgp|cdn|pim|innet --out DIR [--days N] [--symptoms N]
                [--seed S] [--paper-scale] [--store-out DIR]
                [--store-format v1|v2]
  grca diagnose --study bgp|cdn|pim|innet --data DIR [--dsl FILE]...
                [--threads N] [--trend] [--score] [--drill CAUSE]
                [--metrics-out FILE] [--store DIR] [--span-log FILE]
  grca metrics --study bgp|cdn|pim|innet --data DIR [--threads N]
               [--format prometheus|json] [--store DIR]
  grca calibrate --study bgp|cdn|pim --data DIR [--store DIR]
                 --symptom EVENT --diagnostic EVENT --join LEVEL
  grca learn (--study bgp|cdn|pim|innet --data DIR [--store DIR]
             | --topology FILE --scenario CLASS [--days N] [--symptoms N]
               [--noise X] [--pers N] [--customers N])
             [--seed S] [--ablate SYM->DIAG]... [--dsl FILE]...
             [--max-iterations N] [--budget N] [--min-score X] [--alpha X]
             [--permutations N] [--threads N] [--deterministic] [--out FILE]
             [--gate-out FILE] [--rules-out FILE] [--metrics-out FILE]
             [--span-log FILE]
  grca replay [--study bgp|cdn|pim|innet] [--data DIR] [--rate N[x]|max]
              [--ingest-threads N] [--workers N] [--tick SEC]
              [--source-lag SEC] [--jitter SEC] [--seed S] [--days N]
              [--symptoms N] [--report-out FILE] [--metrics-out FILE]
              [--min-rate RECORDS_PER_MIN] [--no-truth] [--persist DIR]
              [--persist-seal-every SEC] [--persist-format v1|v2]
  grca serve --study bgp|cdn|pim|innet [--data DIR] [--port N]
             [--port-file FILE] [--http-threads N] [--api-dump DIR] [--once]
             [--public] [--follow] [--rate N[x]|max] [--tick SEC]
             [--idle-ticks N] [--alert-rules FILE] [--workers N]
             [--persist DIR] [--persist-seal-every SEC]
             [--persist-format v1|v2] [--days N] [--symptoms N] [--seed S]
  grca shard --study bgp|cdn|pim|innet --data DIR --store DIR [--workers N]
             [--threads N] [--mode slice|filter] [--slice-dir DIR]
             [--slice-format v1|v2] [--keep-slices] [--retry-failed]
             [--dsl FILE]... [--metrics-out FILE] [--fail-worker N]
             [--fail-after N]
  grca store inspect --dir DIR
  grca store verify --dir DIR [--deep]
  grca store compact --dir DIR [--format v1|v2]
  grca spans --in FILE [--out FILE]
  grca benchmark [--topology FILE]... [--topo-dir DIR] [--scenarios LIST]
                 [--days N] [--symptoms N] [--seed S] [--threads N]
                 [--noise X] [--pers N] [--customers N] [--out FILE]
                 [--gate-out FILE] [--deterministic]
  grca version
)";
  std::exit(2);
}

/// Minimal flag parser: --key value pairs plus bare flags.
struct Args {
  std::map<std::string, std::vector<std::string>> values;
  std::set<std::string> flags;

  static Args parse(int argc, char** argv, int from,
                    const std::set<std::string>& bare) {
    Args args;
    for (int i = from; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) usage("unexpected argument " + arg);
      std::string key = arg.substr(2);
      if (bare.count(key)) {
        args.flags.insert(key);
      } else {
        if (i + 1 >= argc) usage("missing value for --" + key);
        args.values[key].push_back(argv[++i]);
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values.find(key);
    if (it == values.end()) {
      if (fallback.empty()) usage("missing --" + key);
      return fallback;
    }
    return it->second.back();
  }
  long get_long(const std::string& key, long fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    try {
      return std::stol(it->second.back());
    } catch (const std::exception&) {
      throw ConfigError("--" + key + ": expected an integer, got '" +
                        it->second.back() + "'");
    }
  }
};

struct StudyHooks {
  core::DiagnosisGraph (*graph)();
  void (*browser)(core::ResultBrowser&);
  std::string (*canonical)(const std::string&);
};

StudyHooks hooks_for(const std::string& study) {
  if (study == "bgp") {
    return {apps::bgp::build_graph, apps::bgp::configure_browser,
            apps::bgp::canonical_cause};
  }
  if (study == "cdn") {
    return {apps::cdn::build_graph, apps::cdn::configure_browser,
            apps::cdn::canonical_cause};
  }
  if (study == "pim") {
    return {apps::pim::build_graph, apps::pim::configure_browser,
            apps::pim::canonical_cause};
  }
  if (study == "innet") {
    return {apps::innet::build_graph, apps::innet::configure_browser,
            apps::innet::canonical_cause};
  }
  usage("unknown study '" + study + "'");
}

int cmd_dump_library() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  std::cout << core::render_dsl(graph);
  return 0;
}

/// Per-study workload defaults (days, target symptom count), matching the
/// scale of the paper's case studies.
struct StudyDefaults {
  int days;
  int symptoms;
};

StudyDefaults study_defaults(const std::string& study) {
  if (study == "bgp") return {30, 2000};
  if (study == "cdn") return {30, 1500};
  if (study == "pim") return {14, 2000};
  if (study == "innet") return {30, 600};
  usage("unknown study '" + study + "'");
}

sim::StudyOutput run_workload(const std::string& study,
                              const topology::Network& net, int days,
                              int symptoms, std::uint64_t seed) {
  if (study == "bgp") {
    sim::BgpStudyParams p;
    p.days = days;
    p.target_symptoms = symptoms;
    p.seed = seed;
    return sim::run_bgp_study(net, p);
  }
  if (study == "cdn") {
    sim::CdnStudyParams p;
    p.days = days;
    p.target_symptoms = symptoms;
    p.seed = seed;
    return sim::run_cdn_study(net, p);
  }
  if (study == "pim") {
    sim::PimStudyParams p;
    p.days = days;
    p.target_symptoms = symptoms;
    p.seed = seed;
    return sim::run_pim_study(net, p);
  }
  if (study == "innet") {
    sim::InnetStudyParams p;
    p.days = days;
    p.target_symptoms = symptoms;
    p.seed = seed;
    return sim::run_innet_study(net, p);
  }
  usage("unknown study '" + study + "'");
}

/// Generates the synthetic ISP + study workload used by `simulate` and by
/// `replay` when no --data corpus is given.
sim::ReplayCorpus generate_corpus(const Args& args, const std::string& study,
                                  StudyDefaults defaults) {
  topology::TopoParams tp;
  if (args.flags.count("paper-scale")) {
    tp = topology::paper_scale_params();
  } else {
    tp.pops = 10;
    tp.pers_per_pop = 6;
    tp.customers_per_per = 8;
    tp.mvpn_count = 4;
    tp.mvpn_sites_per_vpn = 10;
  }
  tp.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  topology::Network net = topology::generate_isp(tp);
  sim::StudyOutput result = run_workload(
      study, net, static_cast<int>(args.get_long("days", defaults.days)),
      static_cast<int>(args.get_long("symptoms", defaults.symptoms)),
      tp.seed + 1);
  return sim::ReplayCorpus{std::move(net), std::move(result.records),
                           std::move(result.truth)};
}

/// Routers at which BGP egress changes are evaluated for a study (the CDN
/// study watches its ingress routers; other studies need none).
std::vector<topology::RouterId> observers_for(const std::string& study,
                                              const topology::Network& net) {
  if (study == "cdn" && !net.cdn_nodes().empty()) {
    return net.cdn_nodes().front().ingress_routers;
  }
  return {};
}

int cmd_simulate(const Args& args) {
  std::string study = args.get("study");
  fs::path out(args.get("out"));
  sim::ReplayCorpus corpus = generate_corpus(args, study, study_defaults(study));
  sim::write_corpus(out, corpus.network, corpus.records, corpus.truth);
  std::cout << "wrote " << corpus.network.routers().size() << " configs, "
            << corpus.records.size() << " records, " << corpus.truth.size()
            << " truth labels under " << out.string() << "\n";
  if (auto it = args.values.find("store-out"); it != args.values.end()) {
    fs::path store_dir(it->second.back());
    apps::Pipeline pipeline(corpus.network, corpus.records,
                            collector::ExtractOptions{},
                            observers_for(study, corpus.network));
    const core::EventStore& store = pipeline.store();
    // Batch extraction is complete, so the watermark is one past the last
    // event start: everything on disk is final.
    util::TimeSec watermark = 0;
    for (const std::string& name : store.event_names()) {
      for (const core::EventInstance& e : store.all(name)) {
        watermark = std::max(watermark, e.when.start + 1);
      }
    }
    storage::SealFormat format =
        storage::parse_seal_format(args.get("store-format", "v2"));
    storage::write_sealed_store(store_dir, store, watermark, format);
    std::cout << "persisted " << store.total_instances() << " events ("
              << store.event_names().size() << " names) to "
              << store_dir.string() << "\n";
  }
  return 0;
}

/// The shared front half of `diagnose` and `metrics`: corpus + pipeline
/// from DIR, study graph (plus extra DSL files), full diagnose_all. The
/// corpus is owned here because the pipeline keeps a reference to its
/// network.
struct StudyRun {
  std::unique_ptr<sim::ReplayCorpus> corpus;
  std::unique_ptr<apps::Pipeline> pipeline;
  std::vector<core::Diagnosis> diagnoses;
  StudyHooks hooks{};
};

StudyRun run_study(const Args& args) {
  StudyRun run;
  std::string study = args.get("study");
  fs::path data(args.get("data"));
  run.hooks = hooks_for(study);

  if (auto it = args.values.find("span-log"); it != args.values.end()) {
    if (!obs::set_span_log(it->second.back())) {
      usage("cannot write span log " + it->second.back());
    }
  }

  run.corpus =
      std::make_unique<sim::ReplayCorpus>(sim::read_corpus(data));
  const topology::Network& net = run.corpus->network;
  if (auto it = args.values.find("store"); it != args.values.end()) {
    // Serve events from the persisted log (mmap-backed) instead of
    // re-extracting; the pipeline still replays routing state.
    auto pstore = std::make_shared<storage::PersistentEventStore>(
        storage::PersistentEventStore::open(fs::path(it->second.back())));
    run.pipeline = std::make_unique<apps::Pipeline>(net, run.corpus->records,
                                                    std::move(pstore));
  } else {
    run.pipeline = std::make_unique<apps::Pipeline>(
        net, run.corpus->records, collector::ExtractOptions{},
        observers_for(study, net));
  }

  core::DiagnosisGraph graph = run.hooks.graph();
  if (auto it = args.values.find("dsl"); it != args.values.end()) {
    for (const std::string& file : it->second) {
      std::ifstream in(file);
      if (!in) usage("cannot open DSL file " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      core::load_dsl(ss.str(), graph);
    }
    graph.validate();
  }
  long threads = args.get_long("threads", 0);  // 0 = hardware concurrency
  if (threads < 0) usage("--threads must be >= 0");
  run.diagnoses = run.pipeline->diagnose_all(std::move(graph),
                                             static_cast<unsigned>(threads));
  return run;
}

/// Dumps the installed registry to FILE; `.json` selects JSON, anything
/// else Prometheus text.
void write_metrics_file(const fs::path& file) {
  obs::MetricsRegistry* reg = obs::registry_ptr();
  if (!reg) throw ConfigError("--metrics-out: no metrics registry installed");
  std::ofstream out(file);
  if (!out) usage("cannot write " + file.string());
  out << (file.extension() == ".json" ? obs::render_json(*reg)
                                      : obs::render_prometheus(*reg));
}

int cmd_diagnose(const Args& args) {
  StudyRun run = run_study(args);
  apps::Pipeline& pipeline = *run.pipeline;
  core::ResultBrowser browser(std::move(run.diagnoses));
  run.hooks.browser(browser);
  std::cout << browser.breakdown().render("root cause breakdown");
  std::cout << "\nmean diagnosis time: " << browser.mean_diagnosis_ms()
            << " ms/symptom over " << browser.diagnoses().size()
            << " symptoms\n";

  if (args.flags.count("trend")) {
    std::cout << "\n" << browser.trend().render("daily trend");
    core::TrendSeries series = core::daily_counts(browser.diagnoses());
    if (auto alert = core::detect_level_shift(series)) {
      std::cout << "TREND ALERT: daily symptom rate shifted "
                << alert->before_mean << " -> " << alert->after_mean
                << "/day on " << util::format_utc(alert->day_utc)
                << " (score " << alert->score << ")\n";
    }
  }
  if (args.flags.count("score")) {
    const std::vector<sim::TruthEntry>& truth = run.corpus->truth;
    if (truth.empty()) {
      std::cout << "\nno truth.tsv found; skipping scoring\n";
    } else {
      apps::Score score = apps::score_diagnoses(browser.diagnoses(), truth,
                                                run.hooks.canonical);
      std::cout << "\naccuracy vs ground truth: " << 100.0 * score.accuracy()
                << "% (" << score.correct << "/" << score.matched
                << " matched diagnoses)\n";
    }
  }
  if (auto it = args.values.find("drill"); it != args.values.end()) {
    auto cases = browser.with_cause(it->second.back());
    if (cases.empty()) {
      std::cout << "\nno diagnoses with cause " << it->second.back() << "\n";
    } else {
      std::cout << "\n"
                << browser.drill_down(*cases.front(),
                                      pipeline.context_lookup());
    }
  }
  if (auto it = args.values.find("metrics-out"); it != args.values.end()) {
    write_metrics_file(fs::path(it->second.back()));
  }
  return 0;
}

int cmd_metrics(const Args& args) {
  std::string format = args.get("format", "prometheus");
  if (format != "prometheus" && format != "json") {
    usage("--format must be prometheus or json");
  }
  StudyRun run = run_study(args);  // fills the registry as a side effect
  obs::MetricsRegistry* reg = obs::registry_ptr();
  if (!reg) {
    std::cerr << "error: no metrics registry installed\n";
    return 1;
  }
  std::cout << (format == "json" ? obs::render_json(*reg)
                                 : obs::render_prometheus(*reg));
  return 0;
}

int cmd_calibrate(const Args& args) {
  fs::path data(args.get("data"));
  sim::ReplayCorpus corpus = sim::read_corpus(data);
  std::unique_ptr<apps::Pipeline> pipeline;
  if (auto it = args.values.find("store"); it != args.values.end()) {
    // Calibrate against the persisted event log (the same view `diagnose
    // --store` reads) instead of re-extracting from raw telemetry.
    auto pstore = std::make_shared<storage::PersistentEventStore>(
        storage::PersistentEventStore::open(fs::path(it->second.back())));
    pipeline = std::make_unique<apps::Pipeline>(corpus.network, corpus.records,
                                                std::move(pstore));
  } else {
    pipeline =
        std::make_unique<apps::Pipeline>(corpus.network, corpus.records);
  }
  auto result = core::calibrate_temporal(
      pipeline->events(), pipeline->mapper(), args.get("symptom"),
      args.get("diagnostic"), core::parse_location_type(args.get("join")));
  if (!result) {
    std::cout << "not enough co-occurrences to calibrate\n";
    return 1;
  }
  std::cout << "samples: " << result->samples
            << "  median lag: " << result->median_lag
            << " s  coverage: " << 100.0 * result->coverage << "%\n";
  std::cout << "calibrated rule:\n"
            << "  symptom " << core::to_string(result->rule.symptom.option)
            << " " << result->rule.symptom.left << " "
            << result->rule.symptom.right << "\n"
            << "  diagnostic "
            << core::to_string(result->rule.diagnostic.option) << " "
            << result->rule.diagnostic.left << " "
            << result->rule.diagnostic.right << "\n";
  return 0;
}

int cmd_replay(const Args& args) {
  std::string study = args.get("study", "bgp");
  StudyHooks hooks = hooks_for(study);

  // Source data: a recorded corpus, or a freshly generated default scenario
  // (a two-week study at paper-like symptom density).
  std::unique_ptr<sim::ReplayCorpus> corpus;
  if (auto it = args.values.find("data"); it != args.values.end()) {
    corpus = std::make_unique<sim::ReplayCorpus>(
        sim::read_corpus(fs::path(it->second.back())));
  } else {
    corpus = std::make_unique<sim::ReplayCorpus>(
        generate_corpus(args, study, StudyDefaults{14, 1000}));
  }

  apps::ReplayOptions opt;
  std::string rate = args.get("rate", "max");
  if (rate != "max") {
    if (!rate.empty() && rate.back() == 'x') rate.pop_back();
    try {
      opt.rate = std::stod(rate);
    } catch (const std::exception&) {
      opt.rate = -1.0;
    }
    if (opt.rate <= 0) usage("--rate must be a positive factor or 'max'");
  }
  opt.ingest_threads =
      static_cast<unsigned>(args.get_long("ingest-threads", 2));
  opt.stream.workers = static_cast<unsigned>(args.get_long("workers", 1));
  opt.tick = args.get_long("tick", 300);
  opt.source_lag = args.get_long("source-lag", 120);
  opt.record_jitter = args.get_long("jitter", 60);
  opt.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  if (auto it = args.values.find("persist"); it != args.values.end()) {
    opt.stream.persist_dir = fs::path(it->second.back());
    opt.stream.persist_seal_every =
        args.get_long("persist-seal-every", util::kHour);
    opt.stream.persist_format =
        storage::parse_seal_format(args.get("persist-format", "v2"));
  }

  apps::FeedReplayer replayer(corpus->network, opt);
  core::DiagnosisGraph graph = hooks.graph();
  bool with_truth = !args.flags.count("no-truth");
  apps::ReplayReport report =
      replayer.replay(corpus->records, graph,
                      with_truth ? &corpus->truth : nullptr, hooks.canonical);

  std::cout << apps::render_text(report);
  if (auto it = args.values.find("report-out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << apps::render_json(report);
  }
  if (auto it = args.values.find("metrics-out"); it != args.values.end()) {
    write_metrics_file(fs::path(it->second.back()));
  }

  long min_rate = args.get_long("min-rate", 0);
  if (min_rate > 0 && report.records_per_min() < static_cast<double>(min_rate)) {
    std::cerr << "replay gate: sustained " << report.records_per_min()
              << " records/min < required " << min_rate << "\n";
    return 1;
  }
  return report.passed() ? 0 : 1;
}

/// Writes every /api/* response to `dir` through ServicePlane::handle —
/// the exact code path the live server runs, so a curl of the running
/// server and these files are byte-identical (the CI smoke job diffs them).
void api_dump(const service::ServicePlane& plane, const fs::path& dir) {
  fs::create_directories(dir);
  static constexpr std::pair<const char*, const char*> kEndpoints[] = {
      {"/api/breakdown", "breakdown.json"},
      {"/api/trending", "trending.json"},
      {"/api/health", "health.json"},
      {"/api/alerts", "alerts.json"},
      {"/api/drilldown/unknown", "drilldown-unknown.json"},
  };
  for (const auto& [target, file] : kEndpoints) {
    std::ofstream out(dir / file);
    if (!out) usage("cannot write " + (dir / file).string());
    out << plane.get(target);
  }
  std::cout << "wrote " << std::size(kEndpoints) << " API dumps under "
            << dir.string() << "\n";
}

std::vector<service::AlertRule> load_alert_rules(const Args& args) {
  auto it = args.values.find("alert-rules");
  if (it == args.values.end()) return service::default_alert_rules();
  std::ifstream in(it->second.back());
  if (!in) usage("cannot open alert rules file " + it->second.back());
  std::stringstream ss;
  ss << in.rdbuf();
  return service::parse_alert_rules(ss.str());
}

/// Starts the HTTP listeners and reports where they landed (--port 0 binds
/// an ephemeral port; --port-file is how scripts learn which).
void start_serving(service::ServicePlane& plane, const Args& args) {
  plane.start();
  if (auto it = args.values.find("port-file"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << plane.port() << "\n";
  }
  std::cout << "serving on http://127.0.0.1:" << plane.port()
            << " (/metrics, /api/*)" << std::endl;
}

/// Blocks until SIGINT/SIGTERM, then announces the graceful shutdown.
void wait_for_shutdown(service::ServicePlane& plane) {
  while (!service::ShutdownSignal::requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "signal " << service::ShutdownSignal::signal_number()
            << ": closing listeners" << std::endl;
  plane.stop();
}

int cmd_serve(const Args& args) {
  std::string study = args.get("study");
  StudyHooks hooks = hooks_for(study);
  bool follow = args.flags.count("follow") > 0;
  bool once = args.flags.count("once") > 0;

  std::unique_ptr<sim::ReplayCorpus> corpus;
  if (auto it = args.values.find("data"); it != args.values.end()) {
    corpus = std::make_unique<sim::ReplayCorpus>(
        sim::read_corpus(fs::path(it->second.back())));
  } else {
    corpus = std::make_unique<sim::ReplayCorpus>(
        generate_corpus(args, study, StudyDefaults{14, 1000}));
  }
  if (corpus->records.empty()) usage("corpus has no records");

  service::ServicePlaneOptions popt;
  popt.port = static_cast<std::uint16_t>(args.get_long("port", 0));
  popt.http_threads = static_cast<unsigned>(args.get_long("http-threads", 1));
  popt.loopback_only = args.flags.count("public") == 0;
  service::ServicePlane plane(popt);
  {
    // Same labels and row order as the study's offline report tables.
    core::ResultBrowser browser{std::vector<core::Diagnosis>{}};
    hooks.browser(browser);
    plane.set_display(service::DisplayConfig::from_browser(browser));
  }

  service::ShutdownSignal::install();

  if (!follow) {
    // Batch mode: run the study once, publish the finished result, serve.
    core::DiagnosisGraph graph = hooks.graph();
    apps::Pipeline pipeline(corpus->network, corpus->records,
                            collector::ExtractOptions{},
                            observers_for(study, corpus->network));
    long threads = args.get_long("threads", 0);
    if (threads < 0) usage("--threads must be >= 0");
    std::vector<core::Diagnosis> diagnoses =
        pipeline.diagnose_all(std::move(graph),
                              static_cast<unsigned>(threads));
    // The stream clock echoed by /api/health: end of the diagnosed data
    // (deterministic, so batch dumps are reproducible run to run).
    util::TimeSec now = 0;
    for (const core::Diagnosis& d : diagnoses) {
      now = std::max(now, d.symptom.when.end);
    }
    plane.add_diagnoses(diagnoses);
    plane.set_health(pipeline.feed_health().status());
    plane.set_alerts(load_alert_rules(args), {}, 0);
    plane.publish(now);
    std::cout << "published " << diagnoses.size() << " diagnoses (batch "
              << study << " study)" << std::endl;
    if (auto it = args.values.find("api-dump"); it != args.values.end()) {
      api_dump(plane, fs::path(it->second.back()));
    }
    if (once) return 0;
    start_serving(plane, args);
    wait_for_shutdown(plane);
    return 0;
  }

  // Follow mode: stream the corpus through the real-time engine, publish a
  // fresh snapshot every tick, and let the alert engine inject missing-data
  // evidence into the live diagnosis.
  core::DiagnosisGraph graph = hooks.graph();
  service::add_missing_data_support(graph);
  apps::StreamingOptions sopt;
  sopt.workers = static_cast<unsigned>(args.get_long("workers", 1));
  if (auto it = args.values.find("persist"); it != args.values.end()) {
    sopt.persist_dir = fs::path(it->second.back());
    sopt.persist_seal_every =
        args.get_long("persist-seal-every", util::kHour);
    sopt.persist_format =
        storage::parse_seal_format(args.get("persist-format", "v2"));
  }
  apps::StreamingRca stream(corpus->network, std::move(graph), sopt);

  std::vector<core::Location> scope;
  for (const topology::Pop& p : corpus->network.pops()) {
    scope.push_back(core::Location::pop(p.name));
  }
  service::AlertEngine alerts(load_alert_rules(args), std::move(scope));

  double rate = 0.0;  // <= 0: as fast as possible
  if (std::string r = args.get("rate", "max"); r != "max") {
    if (!r.empty() && r.back() == 'x') r.pop_back();
    try {
      rate = std::stod(r);
    } catch (const std::exception&) {
      rate = -1.0;
    }
    if (rate <= 0) usage("--rate must be a positive factor or 'max'");
  }
  util::TimeSec tick = args.get_long("tick", 300);
  if (tick <= 0) usage("--tick must be positive");
  long idle_ticks = args.get_long("idle-ticks", 0);

  if (!once) start_serving(plane, args);

  const telemetry::RecordStream& records = corpus->records;
  util::TimeSec start_sim = records.front().true_utc;
  auto wall_start = std::chrono::steady_clock::now();
  auto pace = [&](util::TimeSec sim) {
    if (rate <= 0) return;
    auto target = wall_start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(sim - start_sim) /
                                       rate));
    while (!service::ShutdownSignal::requested() &&
           std::chrono::steady_clock::now() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };

  std::size_t diag_total = 0;
  auto step = [&](util::TimeSec t) {
    std::vector<core::Diagnosis> batch = stream.advance(t);
    diag_total += batch.size();
    // Copy the batch before inject(): injected events grow the store, which
    // may invalidate the batch's instance pointers.
    plane.add_diagnoses(batch);
    for (core::EventInstance& e : alerts.evaluate(t)) {
      stream.inject(std::move(e));
    }
    plane.set_health(stream.feed_health().status());
    plane.set_alerts(alerts.rules(), alerts.alarms(),
                     alerts.events_synthesized());
    plane.publish(t);
  };

  util::TimeSec now = start_sim;
  std::size_t idx = 0;
  while (idx < records.size() && !service::ShutdownSignal::requested()) {
    util::TimeSec next = now + tick;
    while (idx < records.size() && records[idx].true_utc < next) {
      stream.ingest(records[idx]);
      ++idx;
    }
    now = next;
    pace(now);
    step(now);
  }
  for (long i = 0;
       i < idle_ticks && !service::ShutdownSignal::requested(); ++i) {
    // The corpus has ended but the clock keeps running: feeds go silent,
    // the silence alarms fire, missing-data evidence enters the graph.
    now += tick;
    pace(now);
    step(now);
  }

  // End of stream (or a shutdown signal): drain the engine — remaining
  // symptoms diagnose, the persistence watermark seals — and publish the
  // final snapshot before the listeners close.
  std::vector<core::Diagnosis> tail = stream.drain();
  diag_total += tail.size();
  plane.add_diagnoses(tail);
  plane.set_health(stream.feed_health().status());
  plane.set_alerts(alerts.rules(), alerts.alarms(),
                   alerts.events_synthesized());
  plane.publish(now);
  std::cout << "stream complete: " << diag_total << " diagnoses, "
            << stream.injected() << " injected alert events, "
            << alerts.alarms().size() << " alarms" << std::endl;
  if (auto it = args.values.find("api-dump"); it != args.values.end()) {
    api_dump(plane, fs::path(it->second.back()));
  }
  if (once) return 0;
  if (service::ShutdownSignal::requested()) {
    std::cout << "signal " << service::ShutdownSignal::signal_number()
              << ": drained and sealed, closing listeners" << std::endl;
    plane.stop();
    return 0;
  }
  wait_for_shutdown(plane);
  return 0;
}

int cmd_shard(const Args& args) {
  shard::ShardOptions options;
  options.study = args.get("study");
  hooks_for(options.study);  // validate the name before forking anything
  options.data_dir = fs::path(args.get("data"));
  options.store_dir = fs::path(args.get("store"));
  long workers = args.get_long("workers", 8);
  if (workers < 1) usage("--workers must be >= 1");
  options.workers = static_cast<std::uint32_t>(workers);
  long threads = args.get_long("threads", 1);
  if (threads < 1) usage("--threads must be >= 1");
  options.threads_per_worker = static_cast<std::uint32_t>(threads);
  options.mode = shard::parse_mode(args.get("mode", "slice"));
  if (auto it = args.values.find("slice-dir"); it != args.values.end()) {
    options.slice_dir = fs::path(it->second.back());
  }
  options.slice_format =
      storage::parse_seal_format(args.get("slice-format", "v2"));
  options.keep_slices = args.flags.count("keep-slices") > 0;
  options.retry_failed = args.flags.count("retry-failed") > 0;
  if (auto it = args.values.find("dsl"); it != args.values.end()) {
    std::stringstream ss;
    for (const std::string& file : it->second) {
      std::ifstream in(file);
      if (!in) usage("cannot open DSL file " + file);
      ss << in.rdbuf() << "\n";
    }
    options.extra_dsl = ss.str();
  }
  long fail_worker = args.get_long("fail-worker", -1);
  if (fail_worker >= 0) {
    options.test_fail_worker = static_cast<std::uint32_t>(fail_worker);
    options.test_fail_after =
        static_cast<std::uint32_t>(args.get_long("fail-after", 0));
  }

  shard::ShardReport report = shard::run_sharded(options);
  std::cerr << report.render_status();
  if (!report.ok) {
    std::cerr << "shard run FAILED\n";
    return 1;
  }

  // Render exactly what `diagnose` renders so the views byte-diff (the
  // mean-diagnosis-time line differs numerically run to run — it carries
  // wall time — which is why the CI comparison strips lines containing
  // "diagnosis time"). `report` outlives the browser: the merged diagnoses
  // point into its decode arenas.
  core::ResultBrowser browser(std::move(report.diagnoses));
  hooks_for(options.study).browser(browser);
  std::cout << browser.breakdown().render("root cause breakdown");
  std::cout << "\nmean diagnosis time: " << browser.mean_diagnosis_ms()
            << " ms/symptom over " << browser.diagnoses().size()
            << " symptoms\n";

  if (auto it = args.values.find("metrics-out"); it != args.values.end()) {
    write_metrics_file(fs::path(it->second.back()));
  }
  return 0;
}

int cmd_store(const std::string& action, const Args& args) {
  fs::path dir(args.get("dir"));
  if (action == "verify") {
    bool deep = args.flags.count("deep") > 0;
    storage::VerifyReport report = storage::verify_store(dir, deep);
    std::cout << "verified " << report.segments << " segment file(s) ("
              << report.v2_segments << " columnar), " << report.frames
              << " row(s), " << report.bytes << " byte(s)"
              << (deep ? ", deep stats rescan" : "") << "\n";
    if (report.torn_wal_bytes > 0) {
      std::cout << "torn WAL tail: " << report.torn_wal_bytes
                << " byte(s) (recoverable — not an error)\n";
    }
    for (const std::string& error : report.errors) {
      std::cerr << "corruption: " << error << "\n";
    }
    if (!report.ok()) {
      std::cerr << report.errors.size() << " integrity error(s)\n";
      return 1;
    }
    std::cout << "integrity OK\n";
    return 0;
  }
  if (action == "compact") {
    storage::SealFormat format =
        storage::parse_seal_format(args.get("format", "v2"));
    std::optional<std::uint64_t> seq = storage::compact_store(dir, format);
    if (!seq) {
      std::cout << "nothing to compact in " << dir.string() << "\n";
      return 0;
    }
    std::cout << "compacted " << dir.string() << " into segment " << *seq
              << " (" << (format == storage::SealFormat::kV2 ? "v2" : "v1")
              << ")\n";
    return 0;
  }
  if (action == "inspect") {
    std::vector<fs::path> segments = storage::list_segments(dir);
    bool wal = fs::exists(dir / storage::kWalName);
    if (segments.empty() && !wal) {
      std::cerr << "no event log at " << dir.string() << "\n";
      return 1;
    }
    if (wal) segments.push_back(dir / storage::kWalName);
    std::uint64_t total_events = 0;
    for (const fs::path& path : segments) {
      storage::SegmentReader seg = storage::SegmentReader::open(path);
      std::cout << path.filename().string() << ": seq " << seg.seq() << ", "
                << seg.size() << " bytes, "
                << (seg.mapped() ? "mapped" : "heap") << ", ";
      if (seg.sealed() && seg.format_version() == storage::kFormatV2) {
        const storage::V2Footer& footer = seg.v2_footer();
        total_events += footer.event_count;
        std::size_t zone_maps = 0;
        for (const storage::V2Run& run : footer.runs) {
          zone_maps += run.blocks.size();
        }
        std::cout << "sealed v2 (columnar): " << footer.event_count
                  << " events across " << footer.runs.size() << " names, "
                  << zone_maps << " zone maps, dictionaries: "
                  << footer.locations.size() << " locations, "
                  << footer.strings.size() << " attr strings, watermark "
                  << footer.watermark << "\n";
        // Per-name run summaries: rows, zone-map block count + time range,
        // column-region bytes. This is the shard-slice debugging view —
        // `grca shard --keep-slices` leaves the per-worker stores on disk
        // and these lines show what each slice actually holds.
        for (const storage::V2Run& run : footer.runs) {
          std::cout << "  " << footer.names[run.name_id] << ": " << run.count
                    << " rows, " << run.blocks.size() << " blocks ("
                    << run.block_rows << " rows/block)";
          if (!run.blocks.empty()) {
            std::cout << ", starts [" << run.blocks.front().min_start << ".."
                      << run.blocks.back().max_start << "]";
          }
          std::cout << ", max duration " << run.max_duration << ", "
                    << run.region_len() << " bytes (starts " << run.starts_len
                    << ", durations " << run.durs_len << ", locations "
                    << run.locs_len << ", attrs " << run.attrs_len << ")\n";
        }
      } else if (seg.sealed()) {
        const storage::SegmentFooter& footer = seg.footer();
        total_events += footer.event_count;
        std::cout << "sealed v1: " << footer.event_count << " events across "
                  << footer.runs.size() << " names, watermark "
                  << footer.watermark << "\n";
      } else {
        storage::SegmentReader::Scan scan = seg.scan_frames();
        total_events += scan.events.size();
        std::cout << "live WAL: " << scan.events.size()
                  << " valid frames";
        if (scan.dropped_bytes > 0) {
          std::cout << ", torn tail " << scan.dropped_bytes << " bytes";
        }
        std::cout << "\n";
      }
    }
    std::cout << "total: " << total_events << " events in "
              << segments.size() << " file(s)\n";
    return 0;
  }
  usage("unknown store action '" + action + "'");
}

/// Extracts the integer after `"key":` in a span JSONL line (the format is
/// fixed — written by obs/span.cpp — so a targeted scan beats a JSON
/// parser dependency).
bool span_field(const std::string& line, const std::string& key,
                long long& out) {
  std::size_t at = line.find("\"" + key + "\":");
  if (at == std::string::npos) return false;
  try {
    out = std::stoll(line.substr(at + key.size() + 3));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

int cmd_spans(const Args& args) {
  fs::path in_path(args.get("in"));
  fs::path out_path(args.get("out", in_path.string() + ".trace.json"));
  std::ifstream in(in_path);
  if (!in) usage("cannot open span log " + in_path.string());
  std::ofstream out(out_path);
  if (!out) usage("cannot write " + out_path.string());
  // Chrome trace format: complete ("X") events on one process/thread
  // timeline, timestamps in microseconds since the log's epoch.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    std::size_t name_at = line.find("\"span\":\"");
    if (name_at == std::string::npos) continue;
    name_at += 8;
    std::size_t name_end = line.find('"', name_at);
    long long start_us = 0;
    long long dur_us = 0;
    if (name_end == std::string::npos ||
        !span_field(line, "start_us", start_us) ||
        !span_field(line, "dur_us", dur_us)) {
      continue;
    }
    if (count > 0) out << ",";
    out << "\n{\"name\":\"" << line.substr(name_at, name_end - name_at)
        << "\",\"ph\":\"X\",\"ts\":" << start_us << ",\"dur\":" << dur_us
        << ",\"pid\":1,\"tid\":1}";
    ++count;
  }
  out << "\n]}\n";
  std::cout << "converted " << count << " span(s) to " << out_path.string()
            << "\n";
  return 0;
}

int cmd_benchmark(const Args& args) {
  // Topology set: explicit --topology files, else every *.graph under the
  // topology directory in name order (stable matrix row order).
  std::vector<fs::path> files;
  if (auto it = args.values.find("topology"); it != args.values.end()) {
    for (const std::string& f : it->second) files.emplace_back(f);
  } else {
    fs::path dir(args.get("topo-dir", "bench/topologies"));
    if (!fs::is_directory(dir)) {
      usage("topology directory " + dir.string() +
            " not found (pass --topology FILE or --topo-dir DIR)");
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".graph") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) usage("no topology files to benchmark");

  apps::BenchmarkOptions options;
  options.days = static_cast<int>(args.get_long("days", 3));
  options.target_symptoms = static_cast<int>(args.get_long("symptoms", 120));
  options.seed = static_cast<std::uint64_t>(args.get_long("seed", 29));
  long threads = args.get_long("threads", 0);
  if (threads < 0) usage("--threads must be >= 0");
  options.threads = static_cast<unsigned>(threads);
  try {
    options.noise = std::stod(args.get("noise", "1.0"));
  } catch (const std::exception&) {
    usage("--noise: expected a number, got '" + args.get("noise", "1.0") +
          "'");
  }
  options.timing = !args.flags.count("deterministic");
  if (auto it = args.values.find("scenarios"); it != args.values.end()) {
    for (std::string_view part : util::split(it->second.back(), ',')) {
      options.scenarios.push_back(
          sim::parse_scenario_class(std::string(util::trim(part))));
    }
  }

  topology::ImportOptions import_options;
  import_options.pers_per_pop = static_cast<int>(args.get_long("pers", 2));
  import_options.customers_per_per =
      static_cast<int>(args.get_long("customers", 4));

  std::deque<topology::Network> networks;  // stable addresses
  std::vector<apps::BenchmarkTopology> topologies;
  for (const fs::path& file : files) {
    topology::ImportStats stats;
    networks.push_back(
        topology::import_repetita_file(file.string(), import_options, &stats));
    topologies.push_back({file.stem().string(), &networks.back()});
    std::cout << "imported " << file.stem().string() << ": "
              << stats.graph_nodes << " nodes, " << stats.graph_edges
              << " edges -> " << stats.backbone_links << " backbone links ("
              << stats.parallel_groups << " SRLG group(s))\n";
  }

  apps::BenchmarkResult result = apps::run_benchmark(topologies, options);
  std::cout << "\n"
            << apps::render_scorecard_table(result).render(
                   "G-RCA benchmark scorecard");

  std::size_t truth = 0, diagnosed = 0, correct = 0;
  for (const apps::BenchmarkCell& c : result.cells) {
    truth += c.truth_total;
    diagnosed += c.diagnosed;
    correct += c.correct;
  }
  double p = diagnosed ? static_cast<double>(correct) / diagnosed : 0.0;
  double r = truth ? static_cast<double>(correct) / truth : 0.0;
  double f1 = p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  std::cout << "\noverall: precision " << util::format_double(p, 4)
            << ", recall " << util::format_double(r, 4) << ", f1 "
            << util::format_double(f1, 4) << " over " << result.cells.size()
            << " cell(s)\n";

  if (auto it = args.values.find("out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << apps::render_scorecard_json(result);
    std::cout << "scorecard written to " << it->second.back() << "\n";
  }
  if (auto it = args.values.find("gate-out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << apps::render_gate_json(result);
    std::cout << "gate metrics written to " << it->second.back() << "\n";
  }
  return 0;
}

int cmd_learn(const Args& args) {
  if (auto it = args.values.find("span-log"); it != args.values.end()) {
    if (!obs::set_span_log(it->second.back())) {
      usage("cannot write span log " + it->second.back());
    }
  }

  learn::LearnDriverOptions options;
  options.deterministic = args.flags.count("deterministic") > 0;
  long max_iterations = args.get_long("max-iterations", 8);
  if (max_iterations < 0) usage("--max-iterations must be >= 0");
  options.loop.max_iterations = static_cast<std::size_t>(max_iterations);
  long budget = args.get_long("budget", 24);
  if (budget < 1) usage("--budget must be >= 1");
  options.loop.candidate_budget = static_cast<std::size_t>(budget);
  long threads = args.get_long("threads", 0);
  if (threads < 0) usage("--threads must be >= 0");
  options.loop.threads = static_cast<unsigned>(threads);
  try {
    options.loop.mine.nice.min_score =
        std::stod(args.get("min-score", "0.15"));
    options.loop.mine.nice.alpha = std::stod(args.get("alpha", "0.01"));
  } catch (const std::exception&) {
    usage("--min-score/--alpha: expected a number");
  }
  long permutations = args.get_long("permutations", 200);
  if (permutations < 1) usage("--permutations must be >= 1");
  options.loop.mine.nice.permutations =
      static_cast<std::size_t>(permutations);
  if (auto it = args.values.find("ablate"); it != args.values.end()) {
    for (const std::string& spec : it->second) {
      std::size_t arrow = spec.find("->");
      std::string symptom(util::trim(spec.substr(0, arrow)));
      std::string diagnostic(
          arrow == std::string::npos ? "" : util::trim(spec.substr(arrow + 2)));
      if (arrow == std::string::npos || symptom.empty() || diagnostic.empty()) {
        usage("--ablate expects 'SYMPTOM->DIAGNOSTIC', got '" + spec + "'");
      }
      options.ablate.emplace_back(std::move(symptom), std::move(diagnostic));
    }
  }

  // Input: a recorded corpus (--study/--data) or a regenerated benchmark
  // cell (--topology/--scenario) with benchmark-identical cell seeding.
  std::unique_ptr<sim::ReplayCorpus> corpus;
  StudyHooks hooks{};
  std::string app;
  if (auto it = args.values.find("topology"); it != args.values.end()) {
    fs::path file(it->second.back());
    sim::ScenarioClass cls = sim::parse_scenario_class(args.get("scenario"));
    app = sim::scenario_app(cls);
    hooks = hooks_for(app);
    topology::ImportOptions import_options;
    import_options.pers_per_pop = static_cast<int>(args.get_long("pers", 2));
    import_options.customers_per_per =
        static_cast<int>(args.get_long("customers", 4));
    topology::ImportStats stats;
    topology::Network net =
        topology::import_repetita_file(file.string(), import_options, &stats);
    std::cout << "imported " << file.stem().string() << ": "
              << stats.graph_nodes << " nodes, " << stats.graph_edges
              << " edges -> " << stats.backbone_links << " backbone links\n";
    sim::ScenarioParams params;
    params.days = static_cast<int>(args.get_long("days", 3));
    params.target_symptoms = static_cast<int>(args.get_long("symptoms", 120));
    try {
      params.noise = std::stod(args.get("noise", "1.0"));
    } catch (const std::exception&) {
      usage("--noise: expected a number, got '" + args.get("noise", "1.0") +
            "'");
    }
    params.seed = apps::cell_seed(
        static_cast<std::uint64_t>(args.get_long("seed", 29)),
        file.stem().string(), sim::to_string(cls));
    sim::StudyOutput study = sim::run_scenario(cls, net, params);
    options.label = file.stem().string() + "." + sim::to_string(cls);
    options.seed = params.seed;
    corpus = std::make_unique<sim::ReplayCorpus>(sim::ReplayCorpus{
        std::move(net), std::move(study.records), std::move(study.truth)});
  } else {
    app = args.get("study");
    hooks = hooks_for(app);
    corpus = std::make_unique<sim::ReplayCorpus>(
        sim::read_corpus(fs::path(args.get("data"))));
    options.label = "study:" + app;
    options.seed = static_cast<std::uint64_t>(args.get_long("seed", 0));
  }
  if (corpus->truth.empty()) {
    usage("learning needs ground-truth labels; the corpus has none");
  }

  std::unique_ptr<apps::Pipeline> pipeline;
  if (auto it = args.values.find("store"); it != args.values.end()) {
    auto pstore = std::make_shared<storage::PersistentEventStore>(
        storage::PersistentEventStore::open(fs::path(it->second.back())));
    pipeline = std::make_unique<apps::Pipeline>(
        corpus->network, corpus->records, std::move(pstore));
  } else {
    pipeline = std::make_unique<apps::Pipeline>(
        corpus->network, corpus->records, collector::ExtractOptions{},
        observers_for(app, corpus->network));
  }

  core::DiagnosisGraph graph = hooks.graph();
  if (auto it = args.values.find("dsl"); it != args.values.end()) {
    for (const std::string& file : it->second) {
      std::ifstream in(file);
      if (!in) usage("cannot open DSL file " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      core::load_dsl(ss.str(), graph);
    }
    graph.validate();
  }

  learn::LearnDriver driver(options);
  learn::LearnRun run = driver.run(*pipeline, std::move(graph), corpus->truth,
                                   hooks.canonical);
  std::cout << learn::render_learn_text(run);

  if (auto it = args.values.find("out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << learn::render_learn_json(run);
    std::cout << "report written to " << it->second.back() << "\n";
  }
  if (auto it = args.values.find("gate-out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << learn::render_learn_gate_json(run);
    std::cout << "gate metrics written to " << it->second.back() << "\n";
  }
  if (auto it = args.values.find("rules-out"); it != args.values.end()) {
    std::ofstream out(it->second.back());
    if (!out) usage("cannot write " + it->second.back());
    out << learn::render_learned_rules_dsl(run);
    std::cout << "learned rules written to " << it->second.back() << "\n";
  }
  if (auto it = args.values.find("metrics-out"); it != args.values.end()) {
    write_metrics_file(fs::path(it->second.back()));
  }

  bool ok = run.options.ablate.empty() ||
            run.ablated_relearned == run.options.ablate.size();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string command = argv[1];
  try {
    if (command == "version" || command == "--version") {
      std::cout << "grca " << GRCA_VERSION << "\n";
      return 0;
    }
    if (command == "dump-library") return cmd_dump_library();
    if (command == "simulate") {
      return cmd_simulate(Args::parse(argc, argv, 2, {"paper-scale"}));
    }
    if (command == "diagnose") {
      return cmd_diagnose(Args::parse(argc, argv, 2, {"trend", "score"}));
    }
    if (command == "metrics") {
      return cmd_metrics(Args::parse(argc, argv, 2, {}));
    }
    if (command == "calibrate") {
      return cmd_calibrate(Args::parse(argc, argv, 2, {}));
    }
    if (command == "replay") {
      return cmd_replay(
          Args::parse(argc, argv, 2, {"no-truth", "paper-scale"}));
    }
    if (command == "serve") {
      return cmd_serve(Args::parse(
          argc, argv, 2, {"follow", "once", "public", "paper-scale"}));
    }
    if (command == "shard") {
      return cmd_shard(
          Args::parse(argc, argv, 2, {"keep-slices", "retry-failed"}));
    }
    if (command == "shard-worker") {
      // Hidden: the exec'd worker half of `grca shard`. Its frame stream
      // rides the fd that arrived as stdout, so steal it first and point
      // stdout at stderr — any stray print then lands in the coordinator's
      // status log instead of corrupting the protocol stream.
      int out_fd = ::dup(STDOUT_FILENO);
      if (out_fd < 0 || ::dup2(STDERR_FILENO, STDOUT_FILENO) < 0) {
        std::cerr << "shard-worker: cannot rewire stdio\n";
        return 1;
      }
      return shard::run_worker(STDIN_FILENO, out_fd);
    }
    if (command == "store") {
      if (argc < 3) usage("store needs an action: inspect|verify|compact");
      return cmd_store(argv[2], Args::parse(argc, argv, 3, {"deep"}));
    }
    if (command == "spans") {
      return cmd_spans(Args::parse(argc, argv, 2, {}));
    }
    if (command == "benchmark") {
      return cmd_benchmark(Args::parse(argc, argv, 2, {"deterministic"}));
    }
    if (command == "learn") {
      return cmd_learn(Args::parse(argc, argv, 2, {"deterministic"}));
    }
    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
