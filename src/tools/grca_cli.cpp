// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// `grca` — the operator-facing command-line tool.
//
//   grca dump-library
//       Print the Knowledge Library (Table I events, Table II rules).
//
//   grca simulate --study bgp|cdn|pim|innet --out DIR
//                 [--days N] [--symptoms N] [--seed S] [--paper-scale]
//       Generate a synthetic ISP + study workload; write the router config
//       snapshots, the layer-1 inventory, the raw telemetry archive and the
//       ground-truth labels under DIR.
//
//   grca diagnose --study bgp|cdn|pim|innet --data DIR
//                 [--dsl FILE]... [--threads N] [--trend] [--score]
//                 [--drill CAUSE] [--metrics-out FILE]
//       Rebuild the network from DIR's configs, replay the telemetry
//       archive, run the study's RCA application (plus any extra DSL
//       files), and print the root-cause breakdown. --threads fans
//       per-symptom diagnosis out over N workers (default: hardware
//       concurrency; 1 = serial — same output either way). --score
//       compares against DIR/truth.tsv; --drill prints one drill-down for
//       the given diagnosed cause ("unknown" works). --metrics-out dumps
//       the metrics registry after the run (FILE ending in .json selects
//       JSON, anything else Prometheus text).
//
//   grca metrics --study bgp|cdn|pim|innet --data DIR [--threads N]
//                [--format prometheus|json]
//       Run the same pipeline + diagnosis as `diagnose`, but print the
//       metrics registry instead of the breakdown: per-source feed
//       counts/lag/gaps, per-stage latency histograms, engine counters.
//
//   grca calibrate --study bgp|cdn|pim --data DIR
//                  --symptom EVENT --diagnostic EVENT --join LEVEL
//       Learn temporal margins for a rule from the archived data (§VI).
//
//   grca version
//       Print the build version (also: grca --version).

#include <filesystem>
#include <set>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "apps/bgp_flap_app.h"
#include "apps/cdn_app.h"
#include "apps/innet_app.h"
#include "apps/pim_app.h"
#include "apps/pipeline.h"
#include "apps/scoring.h"
#include "core/calibration.h"
#include "core/knowledge_library.h"
#include "core/rule_dsl.h"
#include "core/trending.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "simulation/workloads.h"
#include "util/strings.h"
#include "telemetry/records_io.h"
#include "topology/config.h"
#include "topology/topo_gen.h"

namespace fs = std::filesystem;
using namespace grca;

// Injected by src/tools/CMakeLists.txt (project version + git describe).
#ifndef GRCA_VERSION
#define GRCA_VERSION "unknown"
#endif

namespace {

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      R"(usage:
  grca dump-library
  grca simulate --study bgp|cdn|pim|innet --out DIR [--days N] [--symptoms N]
                [--seed S] [--paper-scale]
  grca diagnose --study bgp|cdn|pim|innet --data DIR [--dsl FILE]...
                [--threads N] [--trend] [--score] [--drill CAUSE]
                [--metrics-out FILE]
  grca metrics --study bgp|cdn|pim|innet --data DIR [--threads N]
               [--format prometheus|json]
  grca calibrate --study bgp|cdn|pim --data DIR --symptom EVENT
                 --diagnostic EVENT --join LEVEL
  grca version
)";
  std::exit(2);
}

/// Minimal flag parser: --key value pairs plus bare flags.
struct Args {
  std::map<std::string, std::vector<std::string>> values;
  std::set<std::string> flags;

  static Args parse(int argc, char** argv, int from,
                    const std::set<std::string>& bare) {
    Args args;
    for (int i = from; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) usage("unexpected argument " + arg);
      std::string key = arg.substr(2);
      if (bare.count(key)) {
        args.flags.insert(key);
      } else {
        if (i + 1 >= argc) usage("missing value for --" + key);
        args.values[key].push_back(argv[++i]);
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values.find(key);
    if (it == values.end()) {
      if (fallback.empty()) usage("missing --" + key);
      return fallback;
    }
    return it->second.back();
  }
  long get_long(const std::string& key, long fallback) const {
    auto it = values.find(key);
    if (it == values.end()) return fallback;
    try {
      return std::stol(it->second.back());
    } catch (const std::exception&) {
      throw ConfigError("--" + key + ": expected an integer, got '" +
                        it->second.back() + "'");
    }
  }
};

topology::Network load_network(const fs::path& data) {
  std::vector<std::string> configs;
  for (const auto& entry : fs::directory_iterator(data / "configs")) {
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    configs.push_back(ss.str());
  }
  std::ifstream inv(data / "inventory.txt");
  std::stringstream ss;
  ss << inv.rdbuf();
  return topology::build_network_from_configs(configs, ss.str());
}

telemetry::RecordStream load_records(const fs::path& data) {
  std::ifstream in(data / "records.tsv");
  if (!in) usage("cannot open " + (data / "records.tsv").string());
  return telemetry::read_stream(in);
}

std::vector<sim::TruthEntry> load_truth(const fs::path& data) {
  std::vector<sim::TruthEntry> truth;
  std::ifstream in(data / "truth.tsv");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto f = util::split(line, '\t');
    if (f.size() != 5) throw ParseError("truth.tsv: bad line");
    truth.push_back(
        sim::TruthEntry{f[0], f[1], f[2], std::stoll(f[3]), f[4]});
  }
  return truth;
}

struct StudyHooks {
  core::DiagnosisGraph (*graph)();
  void (*browser)(core::ResultBrowser&);
  std::string (*canonical)(const std::string&);
};

StudyHooks hooks_for(const std::string& study) {
  if (study == "bgp") {
    return {apps::bgp::build_graph, apps::bgp::configure_browser,
            apps::bgp::canonical_cause};
  }
  if (study == "cdn") {
    return {apps::cdn::build_graph, apps::cdn::configure_browser,
            apps::cdn::canonical_cause};
  }
  if (study == "pim") {
    return {apps::pim::build_graph, apps::pim::configure_browser,
            apps::pim::canonical_cause};
  }
  if (study == "innet") {
    return {apps::innet::build_graph, apps::innet::configure_browser,
            apps::innet::canonical_cause};
  }
  usage("unknown study '" + study + "'");
}

int cmd_dump_library() {
  core::DiagnosisGraph graph;
  core::load_knowledge_library(graph);
  std::cout << core::render_dsl(graph);
  return 0;
}

int cmd_simulate(const Args& args) {
  std::string study = args.get("study");
  fs::path out(args.get("out"));
  topology::TopoParams tp;
  if (args.flags.count("paper-scale")) {
    tp = topology::paper_scale_params();
  } else {
    tp.pops = 10;
    tp.pers_per_pop = 6;
    tp.customers_per_per = 8;
    tp.mvpn_count = 4;
    tp.mvpn_sites_per_vpn = 10;
  }
  tp.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  topology::Network net = topology::generate_isp(tp);

  sim::StudyOutput result;
  if (study == "bgp") {
    sim::BgpStudyParams p;
    p.days = static_cast<int>(args.get_long("days", 30));
    p.target_symptoms = static_cast<int>(args.get_long("symptoms", 2000));
    p.seed = tp.seed + 1;
    result = sim::run_bgp_study(net, p);
  } else if (study == "cdn") {
    sim::CdnStudyParams p;
    p.days = static_cast<int>(args.get_long("days", 30));
    p.target_symptoms = static_cast<int>(args.get_long("symptoms", 1500));
    p.seed = tp.seed + 1;
    result = sim::run_cdn_study(net, p);
  } else if (study == "pim") {
    sim::PimStudyParams p;
    p.days = static_cast<int>(args.get_long("days", 14));
    p.target_symptoms = static_cast<int>(args.get_long("symptoms", 2000));
    p.seed = tp.seed + 1;
    result = sim::run_pim_study(net, p);
  } else if (study == "innet") {
    sim::InnetStudyParams p;
    p.days = static_cast<int>(args.get_long("days", 30));
    p.target_symptoms = static_cast<int>(args.get_long("symptoms", 600));
    p.seed = tp.seed + 1;
    result = sim::run_innet_study(net, p);
  } else {
    usage("unknown study '" + study + "'");
  }

  fs::create_directories(out / "configs");
  for (const topology::Router& r : net.routers()) {
    std::ofstream cfg(out / "configs" / (r.name + ".cfg"));
    cfg << topology::render_config(net, r.id);
  }
  {
    std::ofstream inv(out / "inventory.txt");
    inv << topology::render_layer1_inventory(net);
  }
  {
    std::ofstream rec(out / "records.tsv");
    telemetry::write_stream(rec, result.records);
  }
  {
    std::ofstream truth(out / "truth.tsv");
    truth << "# symptom\trouter\tdetail\ttime\tcause\n";
    for (const sim::TruthEntry& e : result.truth) {
      truth << e.symptom << '\t' << e.router << '\t' << e.detail << '\t'
            << e.time << '\t' << e.cause << '\n';
    }
  }
  std::cout << "wrote " << net.routers().size() << " configs, "
            << result.records.size() << " records, " << result.truth.size()
            << " truth labels under " << out.string() << "\n";
  return 0;
}

/// The shared front half of `diagnose` and `metrics`: network + pipeline
/// from DIR, study graph (plus extra DSL files), full diagnose_all. The
/// network is owned here because the pipeline keeps a reference to it.
struct StudyRun {
  std::unique_ptr<topology::Network> net;
  std::unique_ptr<apps::Pipeline> pipeline;
  std::vector<core::Diagnosis> diagnoses;
  StudyHooks hooks{};
};

StudyRun run_study(const Args& args) {
  StudyRun run;
  std::string study = args.get("study");
  fs::path data(args.get("data"));
  run.hooks = hooks_for(study);

  run.net = std::make_unique<topology::Network>(load_network(data));
  telemetry::RecordStream records = load_records(data);
  std::vector<topology::RouterId> observers;
  if (study == "cdn" && !run.net->cdn_nodes().empty()) {
    observers = run.net->cdn_nodes().front().ingress_routers;
  }
  run.pipeline = std::make_unique<apps::Pipeline>(
      *run.net, records, collector::ExtractOptions{}, observers);

  core::DiagnosisGraph graph = run.hooks.graph();
  if (auto it = args.values.find("dsl"); it != args.values.end()) {
    for (const std::string& file : it->second) {
      std::ifstream in(file);
      if (!in) usage("cannot open DSL file " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      core::load_dsl(ss.str(), graph);
    }
    graph.validate();
  }
  long threads = args.get_long("threads", 0);  // 0 = hardware concurrency
  if (threads < 0) usage("--threads must be >= 0");
  run.diagnoses = run.pipeline->diagnose_all(std::move(graph),
                                             static_cast<unsigned>(threads));
  return run;
}

/// Dumps the installed registry to FILE; `.json` selects JSON, anything
/// else Prometheus text.
void write_metrics_file(const fs::path& file) {
  obs::MetricsRegistry* reg = obs::registry_ptr();
  if (!reg) throw ConfigError("--metrics-out: no metrics registry installed");
  std::ofstream out(file);
  if (!out) usage("cannot write " + file.string());
  out << (file.extension() == ".json" ? obs::render_json(*reg)
                                      : obs::render_prometheus(*reg));
}

int cmd_diagnose(const Args& args) {
  StudyRun run = run_study(args);
  apps::Pipeline& pipeline = *run.pipeline;
  core::ResultBrowser browser(std::move(run.diagnoses));
  run.hooks.browser(browser);
  std::cout << browser.breakdown().render("root cause breakdown");
  std::cout << "\nmean diagnosis time: " << browser.mean_diagnosis_ms()
            << " ms/symptom over " << browser.diagnoses().size()
            << " symptoms\n";

  if (args.flags.count("trend")) {
    std::cout << "\n" << browser.trend().render("daily trend");
    core::TrendSeries series = core::daily_counts(browser.diagnoses());
    if (auto alert = core::detect_level_shift(series)) {
      std::cout << "TREND ALERT: daily symptom rate shifted "
                << alert->before_mean << " -> " << alert->after_mean
                << "/day on " << util::format_utc(alert->day_utc)
                << " (score " << alert->score << ")\n";
    }
  }
  if (args.flags.count("score")) {
    auto truth = load_truth(fs::path(args.get("data")));
    if (truth.empty()) {
      std::cout << "\nno truth.tsv found; skipping scoring\n";
    } else {
      apps::Score score = apps::score_diagnoses(browser.diagnoses(), truth,
                                                run.hooks.canonical);
      std::cout << "\naccuracy vs ground truth: " << 100.0 * score.accuracy()
                << "% (" << score.correct << "/" << score.matched
                << " matched diagnoses)\n";
    }
  }
  if (auto it = args.values.find("drill"); it != args.values.end()) {
    auto cases = browser.with_cause(it->second.back());
    if (cases.empty()) {
      std::cout << "\nno diagnoses with cause " << it->second.back() << "\n";
    } else {
      std::cout << "\n"
                << browser.drill_down(*cases.front(),
                                      pipeline.context_lookup());
    }
  }
  if (auto it = args.values.find("metrics-out"); it != args.values.end()) {
    write_metrics_file(fs::path(it->second.back()));
  }
  return 0;
}

int cmd_metrics(const Args& args) {
  std::string format = args.get("format", "prometheus");
  if (format != "prometheus" && format != "json") {
    usage("--format must be prometheus or json");
  }
  StudyRun run = run_study(args);  // fills the registry as a side effect
  obs::MetricsRegistry* reg = obs::registry_ptr();
  if (!reg) {
    std::cerr << "error: no metrics registry installed\n";
    return 1;
  }
  std::cout << (format == "json" ? obs::render_json(*reg)
                                 : obs::render_prometheus(*reg));
  return 0;
}

int cmd_calibrate(const Args& args) {
  fs::path data(args.get("data"));
  topology::Network net = load_network(data);
  apps::Pipeline pipeline(net, load_records(data));
  auto result = core::calibrate_temporal(
      pipeline.store(), pipeline.mapper(), args.get("symptom"),
      args.get("diagnostic"), core::parse_location_type(args.get("join")));
  if (!result) {
    std::cout << "not enough co-occurrences to calibrate\n";
    return 1;
  }
  std::cout << "samples: " << result->samples
            << "  median lag: " << result->median_lag
            << " s  coverage: " << 100.0 * result->coverage << "%\n";
  std::cout << "calibrated rule:\n"
            << "  symptom " << core::to_string(result->rule.symptom.option)
            << " " << result->rule.symptom.left << " "
            << result->rule.symptom.right << "\n"
            << "  diagnostic "
            << core::to_string(result->rule.diagnostic.option) << " "
            << result->rule.diagnostic.left << " "
            << result->rule.diagnostic.right << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string command = argv[1];
  try {
    if (command == "version" || command == "--version") {
      std::cout << "grca " << GRCA_VERSION << "\n";
      return 0;
    }
    if (command == "dump-library") return cmd_dump_library();
    if (command == "simulate") {
      return cmd_simulate(Args::parse(argc, argv, 2, {"paper-scale"}));
    }
    if (command == "diagnose") {
      return cmd_diagnose(Args::parse(argc, argv, 2, {"trend", "score"}));
    }
    if (command == "metrics") {
      return cmd_metrics(Args::parse(argc, argv, 2, {}));
    }
    if (command == "calibrate") {
      return cmd_calibrate(Args::parse(argc, argv, 2, {}));
    }
    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
