// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The retrieval processes (paper §II-A): turn normalized records into event
// instances. "A type of event can be extracted from raw input data through a
// parsing script, a database query, or some more sophisticated processing" —
// here: syslog message parsers, SNMP threshold queries, down/up flap
// pairing, OSPF cost-in/out inference, and BGP egress-change detection via
// decision-process emulation.
#pragma once

#include <span>
#include <vector>

#include "collector/normalized.h"
#include "core/event_store.h"
#include "routing/bgp.h"
#include "topology/network.h"

namespace grca::collector {

/// Thresholds for the query-style retrieval processes. Applications may
/// redefine them ("the event 'link congestion alarm' ... can be easily
/// redefined as >= 90% link utilization when needed", §II-A).
struct ExtractOptions {
  double cpu_avg_threshold = 80.0;      // % (Table I: CPU high average)
  double util_threshold = 80.0;         // % (Table I: link congestion alarm)
  double corrupt_threshold = 100.0;     // packets (Table I: link loss alarm)
  double rtt_threshold = 100.0;         // ms (CDN RTT increase)
  double tput_threshold = 100.0;        // Mb/s (CDN throughput drop: below)
  double delay_threshold = 50.0;        // ms (in-network delay increase)
  double loss_threshold = 1.0;          // % (in-network loss increase)
  double innet_tput_threshold = 500.0;  // Mb/s (in-network throughput drop)
  double server_load_threshold = 0.9;   // CDN server issue
  util::TimeSec flap_pair_window = 3600;   // max down->up gap for flaps
  util::TimeSec router_cost_window = 30;   // grouping window, router cost in/out
  /// bgp-prefix-flood retrieval: an eBGP session announcing at least
  /// `prefix_flood_count` prefixes within `prefix_flood_window` seconds is a
  /// route-leak signature (normal reflector traffic never bursts that hard).
  int prefix_flood_count = 15;
  util::TimeSec prefix_flood_window = 120;

  /// Baseline-relative anomaly detection for performance metrics (perf
  /// probes + CDN measurements) — the Table I "anomaly detection program"
  /// retrieval style. When enabled it replaces the static thresholds for
  /// those sources: each (location, metric) keeps a rolling baseline and a
  /// reading is an event when it deviates by more than `anomaly_k` robust
  /// standard deviations (MAD-based). This is the principled version of the
  /// paper's observation that fixed thresholds depend on the network
  /// segment (backbone vs access, §II-A).
  bool anomaly_detection = false;
  double anomaly_k = 5.0;
  std::size_t anomaly_min_history = 12;   // samples before detection starts
  std::size_t anomaly_window = 48;        // rolling baseline length
};

class EventExtractor {
 public:
  explicit EventExtractor(const topology::Network& net,
                          ExtractOptions options = {})
      : net_(net), options_(options) {}

  /// Runs every retrieval process over UTC-sorted records, adding instances
  /// to `store`.
  void extract(std::span<const NormalizedRecord> records,
               core::EventStore& store) const;

  /// Detects bgp-egress-change events: for each BGP update, emulates the
  /// decision process at every observer router and emits an event when the
  /// best egress for the touched prefix changes (§II-B utility 1).
  void extract_egress_changes(std::span<const NormalizedRecord> records,
                              const routing::BgpSim& bgp,
                              const std::vector<topology::RouterId>& observers,
                              core::EventStore& store) const;

  const ExtractOptions& options() const noexcept { return options_; }

 private:
  /// The anomaly-detection retrieval process for perf/CDN metrics.
  void extract_metric_anomalies(std::span<const NormalizedRecord> records,
                                core::EventStore& store) const;

  const topology::Network& net_;
  ExtractOptions options_;
};

}  // namespace grca::collector
