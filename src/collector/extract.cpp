// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "collector/extract.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "util/strings.h"

namespace grca::collector {

using core::EventInstance;
using core::EventStore;
using core::Location;
using telemetry::SourceType;
using util::TimeSec;

namespace {

/// A down or up observation waiting to be paired into a flap.
struct UpDown {
  TimeSec time;
  bool up;
};

/// Pairs down->up sequences per key: emits "<base>-down", "<base>-up" for
/// each observation and "<base>-flap" spanning each down..up pair within the
/// window. Unpaired downs produce no flap (the condition persisted).
template <typename MakeLocation>
void pair_flaps(const std::string& base,
                std::map<std::string, std::vector<UpDown>>& observations,
                TimeSec window, const MakeLocation& make_location,
                EventStore& store) {
  for (auto& [key, seq] : observations) {
    // Deterministic: at equal timestamps, "down" sorts before "up" (the
    // physically sensible reading of a same-second flap).
    std::sort(seq.begin(), seq.end(), [](const UpDown& a, const UpDown& b) {
      return a.time < b.time || (a.time == b.time && !a.up && b.up);
    });
    Location where = make_location(key);
    TimeSec pending_down = -1;
    for (const UpDown& o : seq) {
      EventInstance inst;
      inst.name = base + (o.up ? "-up" : "-down");
      inst.when = {o.time, o.time};
      inst.where = where;
      store.add(std::move(inst));
      if (!o.up) {
        pending_down = o.time;
      } else if (pending_down >= 0 && o.time - pending_down <= window) {
        EventInstance flap;
        flap.name = base + "-flap";
        flap.when = {pending_down, o.time};
        flap.where = where;
        store.add(std::move(flap));
        pending_down = -1;
      }
    }
  }
}

/// "%LINK-3-UPDOWN: Interface so-0/0/0, changed state to down" -> (iface, up)
bool parse_updown(const std::string& body, const std::string& marker,
                  std::string& iface, bool& up) {
  if (!util::contains(body, marker)) return false;
  std::size_t pos = body.find("Interface ");
  if (pos == std::string::npos) return false;
  pos += 10;
  std::size_t comma = body.find(',', pos);
  if (comma == std::string::npos) return false;
  iface = body.substr(pos, comma - pos);
  up = util::ends_with(body, "to up");
  return true;
}

/// Extracts the token after `marker`.
bool token_after(const std::string& body, const std::string& marker,
                 std::string& out) {
  std::size_t pos = body.find(marker);
  if (pos == std::string::npos) return false;
  pos += marker.size();
  std::size_t end = body.find_first_of(" ,:", pos);
  out = body.substr(pos, end == std::string::npos ? std::string::npos
                                                  : end - pos);
  return !out.empty();
}

}  // namespace

void EventExtractor::extract(std::span<const NormalizedRecord> records,
                             EventStore& store) const {
  // Pending flap pairings, keyed by "<router>|<detail>".
  std::map<std::string, std::vector<UpDown>> link_updown, proto_updown,
      bgp_updown;
  std::map<std::string, std::vector<UpDown>> pim_updown;  // key router|nbr|vpn

  // OSPF cost inference state: previous metric per link id.
  struct CostEvent {
    TimeSec time;
    topology::LogicalLinkId link;
    bool out;  // cost-out/down vs cost-in/up
  };
  std::vector<CostEvent> cost_events;
  std::map<std::uint32_t, int> prev_metric;

  // BGP announce timestamps per session, keyed "<egress>|<nexthop>", for
  // the prefix-flood retrieval.
  std::map<std::string, std::vector<TimeSec>> announce_times;

  for (const NormalizedRecord& r : records) {
    switch (r.source) {
      case SourceType::kSyslog: {
        const std::string& body = r.body;
        std::string iface, token;
        bool up = false;
        if (parse_updown(body, "%LINK-3-UPDOWN", iface, up)) {
          link_updown[r.router + "|" + iface].push_back(UpDown{r.utc, up});
        } else if (parse_updown(body, "%LINEPROTO-5-UPDOWN", iface, up)) {
          proto_updown[r.router + "|" + iface].push_back(UpDown{r.utc, up});
        } else if (util::contains(body, "%BGP-5-ADJCHANGE")) {
          if (!token_after(body, "neighbor ", token)) break;
          bool session_up = util::contains(body, " Up");
          bgp_updown[r.router + "|" + token].push_back(
              UpDown{r.utc, session_up});
        } else if (util::contains(body, "%BGP-5-NOTIFICATION")) {
          if (!token_after(body, "neighbor ", token)) break;
          EventInstance inst;
          inst.when = {r.utc, r.utc};
          inst.where = Location::router_neighbor(r.router, token);
          if (util::contains(body, "hold time expired")) {
            inst.name = "ebgp-hte";
          } else if (util::contains(body, "administrative reset")) {
            inst.name = "customer-reset-session";
          } else {
            inst.name = "bgp-notification";
          }
          store.add(std::move(inst));
        } else if (util::contains(body, "%SYS-5-RESTART")) {
          store.add(EventInstance{"router-reboot", {r.utc, r.utc},
                                  Location::router(r.router), {}});
        } else if (util::contains(body, "%SYS-1-CPURISINGTHRESHOLD")) {
          store.add(EventInstance{"cpu-high-spike", {r.utc, r.utc},
                                  Location::router(r.router), {}});
        } else if (util::contains(body, "%PIM-5-NBRCHG")) {
          // "%PIM-5-NBRCHG: VRF <vpn>: neighbor <ip> DOWN|UP"
          std::string vpn, nbr;
          if (!token_after(body, "VRF ", vpn) ||
              !token_after(body, "neighbor ", nbr)) {
            break;
          }
          bool adj_up = util::ends_with(body, " UP");
          if (vpn == "default") {
            if (!adj_up) {
              EventInstance inst;
              inst.name = "uplink-pim-adjacency-change";
              inst.when = {r.utc, r.utc};
              inst.where = Location::router(r.router);
              inst.attrs["neighbor"] = nbr;
              store.add(std::move(inst));
            }
          } else {
            pim_updown[r.router + "|" + nbr + "|" + vpn].push_back(
                UpDown{r.utc, adj_up});
          }
        } else if (util::contains(body, "%MCE-2-CRASH")) {
          std::string slot;
          if (token_after(body, "slot ", slot)) {
            store.add(EventInstance{"linecard-crash",
                                    {r.utc, r.utc},
                                    Location::line_card(r.router,
                                                        std::stoi(slot)),
                                    {}});
          }
        }
        break;
      }
      case SourceType::kSnmp: {
        if (r.field == "cpu5min" && r.value >= options_.cpu_avg_threshold) {
          store.add(EventInstance{"cpu-high-avg", {r.utc - 300, r.utc},
                                  Location::router(r.router), {}});
        } else if (r.field == "ifutil" && r.value >= options_.util_threshold) {
          store.add(EventInstance{"link-congestion", {r.utc - 300, r.utc},
                                  Location::interface(r.router, r.interface),
                                  {}});
        } else if (r.field == "ifcorrupt" &&
                   r.value >= options_.corrupt_threshold) {
          store.add(EventInstance{"link-loss", {r.utc - 300, r.utc},
                                  Location::interface(r.router, r.interface),
                                  {}});
        }
        break;
      }
      case SourceType::kLayer1Log: {
        std::string name;
        if (util::contains(r.body, "APS")) {
          name = "sonet-restoration";
        } else if (util::contains(r.body, "restoration fast")) {
          name = "optical-restoration-fast";
        } else if (util::contains(r.body, "restoration regular")) {
          name = "optical-restoration-regular";
        } else {
          break;
        }
        EventInstance inst;
        inst.name = std::move(name);
        inst.when = {r.utc, r.utc};
        inst.where = Location::layer1(r.device);
        std::string ckt;
        if (token_after(r.body, "circuit ", ckt)) inst.attrs["circuit"] = ckt;
        store.add(std::move(inst));
        break;
      }
      case SourceType::kTacacs: {
        const std::string& body = r.body;
        std::string iface, vpn;
        auto router = net_.find_router(r.router);
        if (util::contains(body, "max-metric router-lsa")) {
          // Router-wide cost-out (or cost-in when prefixed with "no").
          bool cost_in = util::contains(body, "no max-metric");
          if (!router) break;
          for (topology::InterfaceId i : net_.router(*router).interfaces) {
            const topology::Interface& ifc = net_.interface(i);
            if (ifc.kind != topology::InterfaceKind::kBackbone) continue;
            store.add(EventInstance{
                cost_in ? "cmd-cost-in" : "cmd-cost-out",
                {r.utc, r.utc},
                Location::interface(r.router, ifc.name),
                {}});
          }
        } else if (util::contains(body, "set ospf metric") &&
                   token_after(body, "interface ", iface)) {
          bool cost_out = util::contains(body, "metric 65535");
          store.add(EventInstance{cost_out ? "cmd-cost-out" : "cmd-cost-in",
                                  {r.utc, r.utc},
                                  Location::interface(r.router, iface),
                                  {}});
        } else if (util::contains(body, "mvpn") &&
                   token_after(body, "vrf ", vpn)) {
          EventInstance inst;
          inst.name = "pim-config-change";
          inst.when = {r.utc, r.utc};
          inst.where = Location::router(r.router);
          inst.attrs["vpn"] = vpn;
          store.add(std::move(inst));
        }
        break;
      }
      case SourceType::kWorkflowLog: {
        EventInstance inst;
        inst.name = "workflow-" + r.field;  // e.g. workflow-provisioning
        inst.when = {r.utc, r.utc};
        inst.where = Location::router(r.router);
        store.add(std::move(inst));
        break;
      }
      case SourceType::kOspfMon: {
        auto router = net_.find_router(r.router);
        if (!router) break;
        auto iface = net_.find_interface(*router, r.interface);
        if (!iface || !net_.interface(*iface).link.valid()) break;
        topology::LogicalLinkId link = net_.interface(*iface).link;
        store.add(EventInstance{"ospf-reconvergence", {r.utc, r.utc},
                                Location::interface(r.router, r.interface),
                                {}});
        int metric = static_cast<int>(r.value);
        bool now_out = metric == 0xFFFF || metric == -1;
        auto it = prev_metric.find(link.value());
        bool was_out =
            it != prev_metric.end() &&
            (it->second == 0xFFFF || it->second == -1);
        prev_metric[link.value()] = metric;
        if (now_out && !was_out) {
          cost_events.push_back(CostEvent{r.utc, link, true});
        } else if (!now_out && was_out) {
          cost_events.push_back(CostEvent{r.utc, link, false});
        }
        break;
      }
      case SourceType::kPerfMon: {
        if (options_.anomaly_detection) break;  // handled by the anomaly pass
        auto in = r.attrs.find("ingress");
        auto out = r.attrs.find("egress");
        if (in == r.attrs.end() || out == r.attrs.end()) break;
        std::string name;
        if (r.field == "delay" && r.value >= options_.delay_threshold) {
          name = "innet-delay-increase";
        } else if (r.field == "loss" && r.value >= options_.loss_threshold) {
          name = "innet-loss-increase";
        } else if (r.field == "tput" &&
                   r.value <= options_.innet_tput_threshold) {
          name = "innet-tput-drop";
        } else {
          break;
        }
        store.add(EventInstance{std::move(name), {r.utc, r.utc},
                                Location::pop_pair(in->second, out->second),
                                {}});
        break;
      }
      case SourceType::kCdnMon: {
        if (options_.anomaly_detection) break;  // handled by the anomaly pass
        auto node = r.attrs.find("node");
        auto client = r.attrs.find("client");
        if (node == r.attrs.end() || client == r.attrs.end()) break;
        if (r.field == "rtt" && r.value >= options_.rtt_threshold) {
          store.add(EventInstance{
              "cdn-rtt-increase", {r.utc, r.utc},
              Location::cdn_client(node->second, client->second), {}});
        } else if (r.field == "tput" && r.value <= options_.tput_threshold) {
          store.add(EventInstance{
              "cdn-tput-drop", {r.utc, r.utc},
              Location::cdn_client(node->second, client->second), {}});
        }
        break;
      }
      case SourceType::kServerLog: {
        auto node = r.attrs.find("node");
        if (node == r.attrs.end()) break;
        if (r.field == "policy-change") {
          store.add(EventInstance{"cdn-policy-change", {r.utc, r.utc},
                                  Location::cdn_node(node->second), {}});
        } else if (r.field == "load" &&
                   r.value >= options_.server_load_threshold) {
          store.add(EventInstance{"cdn-server-issue", {r.utc, r.utc},
                                  Location::cdn_node(node->second), {}});
        }
        break;
      }
      case SourceType::kBgpMon: {
        // Egress changes are handled by extract_egress_changes; here the
        // feed is watched for announce bursts (the route-leak signature).
        if (r.body != "announce") break;
        auto egress = r.attrs.find("egress");
        auto nexthop = r.attrs.find("nexthop");
        if (egress == r.attrs.end() || nexthop == r.attrs.end()) break;
        announce_times[egress->second + "|" + nexthop->second].push_back(
            r.utc);
        break;
      }
    }
  }

  // ---- BGP prefix-flood detection (Table-I-style database query) ----------
  // A session announcing >= prefix_flood_count prefixes inside the sliding
  // window is flooding; the event spans the whole burst (consecutive
  // announces no further than one window apart), so one leak yields one
  // instance, not a train of overlapping ones.
  for (auto& [key, times] : announce_times) {
    std::sort(times.begin(), times.end());
    std::size_t i = 0;
    const std::size_t need =
        static_cast<std::size_t>(std::max(options_.prefix_flood_count, 1));
    while (i + need <= times.size()) {
      if (times[i + need - 1] - times[i] > options_.prefix_flood_window) {
        ++i;
        continue;
      }
      std::size_t j = i + need - 1;
      while (j + 1 < times.size() &&
             times[j + 1] - times[j] <= options_.prefix_flood_window) {
        ++j;
      }
      auto parts = util::split(key, '|');
      store.add(EventInstance{"bgp-prefix-flood",
                              {times[i], times[j]},
                              Location::router_neighbor(parts[0], parts[1]),
                              {}});
      i = j + 1;
    }
  }

  pair_flaps("interface", link_updown, options_.flap_pair_window,
             [](const std::string& key) {
               auto parts = util::split(key, '|');
               return Location::interface(parts[0], parts[1]);
             },
             store);
  pair_flaps("line-protocol", proto_updown, options_.flap_pair_window,
             [](const std::string& key) {
               auto parts = util::split(key, '|');
               return Location::interface(parts[0], parts[1]);
             },
             store);
  pair_flaps("ebgp", bgp_updown, options_.flap_pair_window,
             [](const std::string& key) {
               auto parts = util::split(key, '|');
               return Location::router_neighbor(parts[0], parts[1]);
             },
             store);
  pair_flaps("pim-adjacency", pim_updown, options_.flap_pair_window,
             [](const std::string& key) {
               auto parts = util::split(key, '|');
               return Location::vpn_neighbor(parts[0], parts[1], parts[2]);
             },
             store);

  // ---- Router vs link cost-in/out inference ------------------------------
  // A router is "costed out/in" when every backbone link it terminates
  // changes cost state within a short window; the constituent link events
  // are then attributed to the router, not to the links (Table VIII counts
  // them separately).
  std::sort(cost_events.begin(), cost_events.end(),
            [](const CostEvent& a, const CostEvent& b) {
              return a.time < b.time;
            });
  std::set<std::size_t> suppressed;
  for (std::size_t i = 0; i < cost_events.size(); ++i) {
    if (suppressed.count(i)) continue;
    // Candidate routers: both endpoints of this link.
    const topology::LogicalLink& l = net_.link(cost_events[i].link);
    for (topology::RouterId router :
         {net_.interface(l.side_a).router, net_.interface(l.side_b).router}) {
      auto router_links = net_.links_of_router(router);
      if (router_links.size() < 2) continue;
      std::set<std::uint32_t> seen;
      std::vector<std::size_t> members;
      for (std::size_t j = i; j < cost_events.size() &&
                              cost_events[j].time - cost_events[i].time <=
                                  options_.router_cost_window;
           ++j) {
        if (suppressed.count(j)) continue;
        if (cost_events[j].out != cost_events[i].out) continue;
        if (std::find(router_links.begin(), router_links.end(),
                      cost_events[j].link) == router_links.end()) {
          continue;
        }
        if (seen.insert(cost_events[j].link.value()).second) {
          members.push_back(j);
        }
      }
      // A router-wide cost change: (nearly) every link the router terminates
      // changed state together. Links already in the target state produce no
      // transition, so tolerate a small shortfall (>= 80%, at least 2).
      if (seen.size() >= 2 && 10 * seen.size() >= 8 * router_links.size()) {
        EventInstance inst;
        inst.name = "router-cost-inout";
        inst.when = {cost_events[i].time, cost_events[i].time};
        inst.where = Location::router(net_.router(router).name);
        inst.attrs["direction"] = cost_events[i].out ? "out" : "in";
        store.add(std::move(inst));
        for (std::size_t j : members) suppressed.insert(j);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < cost_events.size(); ++i) {
    if (suppressed.count(i)) continue;
    const topology::LogicalLink& l = net_.link(cost_events[i].link);
    const topology::Interface& a = net_.interface(l.side_a);
    EventInstance inst;
    inst.name = cost_events[i].out ? "link-cost-outdown" : "link-cost-inup";
    inst.when = {cost_events[i].time, cost_events[i].time};
    inst.where =
        Location::interface(net_.router(a.router).name, a.name);
    store.add(std::move(inst));
  }

  if (options_.anomaly_detection) extract_metric_anomalies(records, store);
}

void EventExtractor::extract_metric_anomalies(
    std::span<const NormalizedRecord> records, EventStore& store) const {
  // Rolling robust baseline per (location, metric): median + MAD over the
  // last `anomaly_window` non-anomalous readings. "Lower is bad" metrics
  // (throughput) alarm below the baseline, everything else above it.
  struct Baseline {
    std::deque<double> window;
  };
  std::map<std::string, Baseline> baselines;
  auto median_of = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };

  for (const NormalizedRecord& r : records) {
    bool is_perf = r.source == SourceType::kPerfMon;
    bool is_cdn = r.source == SourceType::kCdnMon;
    if (!is_perf && !is_cdn) continue;

    Location where;
    std::string event_name;
    if (is_perf) {
      auto in = r.attrs.find("ingress");
      auto out = r.attrs.find("egress");
      if (in == r.attrs.end() || out == r.attrs.end()) continue;
      where = Location::pop_pair(in->second, out->second);
      if (r.field == "delay") event_name = "innet-delay-increase";
      else if (r.field == "loss") event_name = "innet-loss-increase";
      else if (r.field == "tput") event_name = "innet-tput-drop";
      else continue;
    } else {
      auto node = r.attrs.find("node");
      auto client = r.attrs.find("client");
      if (node == r.attrs.end() || client == r.attrs.end()) continue;
      where = Location::cdn_client(node->second, client->second);
      if (r.field == "rtt") event_name = "cdn-rtt-increase";
      else if (r.field == "tput") event_name = "cdn-tput-drop";
      else continue;
    }
    bool lower_is_bad = r.field == "tput";
    // CDN baselines are per node+prefix-ish; per-client series are too
    // sparse, so CDN baselines key on the node and metric only.
    std::string key = is_cdn ? "cdn|" + r.attrs.at("node") + "|" + r.field
                             : where.key() + "|" + r.field;

    Baseline& base = baselines[key];
    bool anomalous = false;
    if (base.window.size() >= options_.anomaly_min_history) {
      std::vector<double> values(base.window.begin(), base.window.end());
      double median = median_of(values);
      std::vector<double> deviations;
      deviations.reserve(values.size());
      for (double v : values) deviations.push_back(std::abs(v - median));
      double sigma = std::max(1.4826 * median_of(deviations), 1e-3);
      double z = (r.value - median) / sigma;
      anomalous = lower_is_bad ? z < -options_.anomaly_k
                               : z > options_.anomaly_k;
    }
    if (anomalous) {
      EventInstance inst;
      inst.name = event_name;
      inst.when = {r.utc, r.utc};
      inst.where = where;
      inst.attrs["value"] = util::format_double(r.value, 2);
      store.add(std::move(inst));
    } else {
      base.window.push_back(r.value);
      if (base.window.size() > options_.anomaly_window) {
        base.window.pop_front();
      }
    }
  }
}

void EventExtractor::extract_egress_changes(
    std::span<const NormalizedRecord> records, const routing::BgpSim& bgp,
    const std::vector<topology::RouterId>& observers,
    EventStore& store) const {
  for (const NormalizedRecord& r : records) {
    if (r.source != SourceType::kBgpMon) continue;
    auto prefix_it = r.attrs.find("prefix");
    if (prefix_it == r.attrs.end()) continue;
    util::Ipv4Prefix prefix = util::Ipv4Prefix::parse(prefix_it->second);
    // A representative destination inside the prefix.
    util::Ipv4Addr rep(prefix.address().value() +
                       (prefix.length() < 32 ? 1u : 0u));
    for (topology::RouterId observer : observers) {
      auto before = bgp.best_egress(observer, rep, r.utc - 1);
      auto after = bgp.best_egress(observer, rep, r.utc + 1);
      if (before == after) continue;
      EventInstance inst;
      inst.name = "bgp-egress-change";
      inst.when = {r.utc, r.utc};
      inst.where = Location::ingress_destination(
          net_.router(observer).name, rep.to_string());
      if (before) inst.attrs["from"] = net_.router(*before).name;
      if (after) inst.attrs["to"] = net_.router(*after).name;
      store.add(std::move(inst));
    }
  }
}

}  // namespace grca::collector
