// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Rebuilds the RCA-side routing view from proactively collected monitor
// feeds. The paper is explicit that G-RCA never runs traceroutes: "network
// paths can be computed from BGP and OSPF route-monitoring data". This
// module replays the OSPFMon and BGP-monitor records into fresh OspfSim /
// BgpSim instances over the config-derived Network, giving the
// LocationMapper its historical routing state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "collector/normalized.h"
#include "routing/bgp.h"
#include "routing/ospf.h"

namespace grca::collector {

/// Owns the RCA-side routing simulators (they reference the Network, which
/// must outlive this object).
class RebuiltRouting {
 public:
  explicit RebuiltRouting(const topology::Network& net)
      : ospf_(net), bgp_(ospf_) {}

  /// Replays monitor records (must be UTC-sorted, as normalize_stream
  /// produces). Non-monitor records are ignored. Records referencing
  /// unknown links/routers are counted and skipped.
  void replay(std::span<const NormalizedRecord> records);

  const routing::OspfSim& ospf() const noexcept { return ospf_; }
  const routing::BgpSim& bgp() const noexcept { return bgp_; }
  std::size_t skipped() const noexcept { return skipped_; }

 private:
  routing::OspfSim ospf_;
  routing::BgpSim bgp_;
  std::size_t skipped_ = 0;
};

}  // namespace grca::collector
