// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The Data Collector's record store: normalized records indexed for the
// (device × time-window) queries that power the Result Browser's drill-down
// ("explore additional information such as syslog messages and workflow
// logs that appear on the same router or location as the event being
// analyzed", paper §IV-B).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "collector/normalized.h"

namespace grca::collector {

class RecordIndex {
 public:
  /// Takes ownership of records (any order).
  explicit RecordIndex(std::vector<NormalizedRecord> records);

  /// Records on `router` within [from, to], time-ordered.
  std::vector<const NormalizedRecord*> on_router(const std::string& router,
                                                 util::TimeSec from,
                                                 util::TimeSec to) const;

  /// All records within [from, to], time-ordered.
  std::vector<const NormalizedRecord*> in_window(util::TimeSec from,
                                                 util::TimeSec to) const;

  std::span<const NormalizedRecord> all() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<NormalizedRecord> records_;  // sorted by utc
  // router name -> indices into records_, time-ordered
  std::unordered_map<std::string, std::vector<std::size_t>> by_router_;
};

}  // namespace grca::collector
