// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "collector/record_index.h"

#include <algorithm>

namespace grca::collector {

RecordIndex::RecordIndex(std::vector<NormalizedRecord> records)
    : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const NormalizedRecord& a, const NormalizedRecord& b) {
                     return a.utc < b.utc;
                   });
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].router.empty()) {
      by_router_[records_[i].router].push_back(i);
    }
  }
}

std::vector<const NormalizedRecord*> RecordIndex::on_router(
    const std::string& router, util::TimeSec from, util::TimeSec to) const {
  std::vector<const NormalizedRecord*> out;
  auto it = by_router_.find(router);
  if (it == by_router_.end()) return out;
  const auto& idx = it->second;
  auto first = std::lower_bound(idx.begin(), idx.end(), from,
                                [this](std::size_t i, util::TimeSec v) {
                                  return records_[i].utc < v;
                                });
  for (auto i = first; i != idx.end() && records_[*i].utc <= to; ++i) {
    out.push_back(&records_[*i]);
  }
  return out;
}

std::vector<const NormalizedRecord*> RecordIndex::in_window(
    util::TimeSec from, util::TimeSec to) const {
  std::vector<const NormalizedRecord*> out;
  auto first = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const NormalizedRecord& r, util::TimeSec v) { return r.utc < v; });
  for (auto i = first; i != records_.end() && i->utc <= to; ++i) {
    out.push_back(&*i);
  }
  return out;
}

}  // namespace grca::collector
