// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// The ingest normalizer. It owns the per-source quirks:
//  - syslog: UPPERCASE router names -> canonical; device-local time -> UTC
//    using the router's PoP timezone (learned from configs);
//  - SNMP: "<router>.net.example" FQDNs -> canonical; already UTC;
//  - layer-1 logs: transport-device names resolved against the inventory;
//    device-local time -> UTC via the device's PoP;
//  - TACACS / monitors / workflow: canonical names, already UTC.
// Records that reference devices unknown to the inventory are dropped and
// counted (real collectors do the same; the count is an ingest health
// metric).
#pragma once

#include <limits>
#include <vector>

#include "collector/normalized.h"
#include "obs/feed_health.h"
#include "topology/network.h"

namespace grca::collector {

class Normalizer {
 public:
  /// When `feed_health` is supplied, every normalized record is reported to
  /// it (per-source counts + arrival lag against the running high-water
  /// mark) and every unknown-device rejection is counted per source.
  explicit Normalizer(const topology::Network& net,
                      obs::FeedHealthMonitor* feed_health = nullptr);

  /// Normalizes one raw record; returns false (and counts it) when the
  /// record references an unknown device.
  bool normalize(const telemetry::RawRecord& raw, NormalizedRecord& out) const;

  /// Normalizes a stream, dropping unknown-device records.
  std::vector<NormalizedRecord> normalize_stream(
      const telemetry::RecordStream& stream) const;

  std::size_t dropped() const noexcept { return dropped_; }

 private:
  bool normalize_impl(const telemetry::RawRecord& raw,
                      NormalizedRecord& out) const;

  const topology::Network& net_;
  std::unordered_map<std::string, topology::Layer1DeviceId> l1_by_name_;
  obs::FeedHealthMonitor* feed_health_ = nullptr;
  mutable std::size_t dropped_ = 0;
  /// Highest UTC seen so far: the arrival-time proxy for feed lag (records
  /// are reported in arrival order, so the stream's high-water mark is when
  /// "now" was when the record landed).
  mutable util::TimeSec arrival_high_ = std::numeric_limits<util::TimeSec>::min();
};

}  // namespace grca::collector
