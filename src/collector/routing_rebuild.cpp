// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "collector/routing_rebuild.h"

namespace grca::collector {

using telemetry::SourceType;

void RebuiltRouting::replay(std::span<const NormalizedRecord> records) {
  const topology::Network& net = ospf_.network();
  for (const NormalizedRecord& r : records) {
    if (r.source == SourceType::kOspfMon) {
      auto router = net.find_router(r.router);
      if (!router) {
        ++skipped_;
        continue;
      }
      auto iface = net.find_interface(*router, r.interface);
      if (!iface || !net.interface(*iface).link.valid()) {
        ++skipped_;
        continue;
      }
      topology::LogicalLinkId link = net.interface(*iface).link;
      int metric = static_cast<int>(r.value);
      if (metric == 0xFFFF) metric = routing::kCostedOut;
      if (metric == -1) metric = routing::kDown;
      // Monitor timestamps carry jitter; clamp to be monotonic per link.
      try {
        ospf_.set_weight(link, r.utc, metric);
      } catch (const ConfigError&) {
        ++skipped_;  // out-of-order duplicate from a redundant monitor
      }
    } else if (r.source == SourceType::kBgpMon) {
      auto prefix_it = r.attrs.find("prefix");
      auto egress_it = r.attrs.find("egress");
      if (prefix_it == r.attrs.end() || egress_it == r.attrs.end()) {
        ++skipped_;
        continue;
      }
      auto egress = net.find_router(egress_it->second);
      if (!egress) {
        ++skipped_;
        continue;
      }
      util::Ipv4Prefix prefix = util::Ipv4Prefix::parse(prefix_it->second);
      if (r.body == "announce") {
        routing::BgpRoute route;
        route.prefix = prefix;
        route.egress = *egress;
        if (auto it = r.attrs.find("nexthop"); it != r.attrs.end()) {
          route.next_hop = util::Ipv4Addr::parse(it->second);
        }
        if (auto it = r.attrs.find("localpref"); it != r.attrs.end()) {
          route.local_pref = std::stoi(it->second);
        }
        if (auto it = r.attrs.find("aspathlen"); it != r.attrs.end()) {
          route.as_path_len = std::stoi(it->second);
        }
        if (auto it = r.attrs.find("med"); it != r.attrs.end()) {
          route.med = std::stoi(it->second);
        }
        bgp_.announce(route, r.utc);
      } else if (r.body == "withdraw") {
        bgp_.withdraw(prefix, *egress, r.utc);
      } else {
        ++skipped_;
      }
    }
  }
}

}  // namespace grca::collector
