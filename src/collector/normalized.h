// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT
//
// Normalized records: the output of the Data Collector's ingest stage.
// Naming conventions are unified (canonical lowercase router names, layer-1
// device names resolved against the inventory) and every timestamp is UTC —
// "the normalization across naming conventions, time zones, and identifiers
// takes place as data is ingested into the Data Collector" (paper §II-A).
#pragma once

#include <map>
#include <string>

#include "telemetry/records.h"

namespace grca::collector {

struct NormalizedRecord {
  telemetry::SourceType source = telemetry::SourceType::kSyslog;
  util::TimeSec utc = 0;
  std::string router;     // canonical router name ("" when not router-scoped)
  std::string device;     // layer-1 device / raw device name
  std::string interface;  // interface name when interface-scoped
  std::string field;
  std::string body;
  double value = 0.0;
  std::map<std::string, std::string> attrs;
};

/// One-line rendering for drill-down output.
std::string render(const NormalizedRecord& record);

}  // namespace grca::collector
