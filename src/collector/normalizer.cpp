// Copyright (c) 2026 The G-RCA Reproduction Authors.
// SPDX-License-Identifier: MIT

#include "collector/normalizer.h"

#include <algorithm>
#include <tuple>

#include "util/strings.h"

namespace grca::collector {

using telemetry::RawRecord;
using telemetry::SourceType;

std::string render(const NormalizedRecord& record) {
  std::string out = util::format_utc(record.utc);
  out += " [";
  out += telemetry::to_string(record.source);
  out += "] ";
  if (!record.router.empty()) {
    out += record.router;
    out += " ";
  } else if (!record.device.empty()) {
    out += record.device;
    out += " ";
  }
  if (!record.interface.empty()) {
    out += record.interface;
    out += " ";
  }
  if (!record.field.empty()) {
    out += record.field;
    out += "=";
    out += util::format_double(record.value, 1);
    out += " ";
  }
  out += record.body;
  for (const auto& [k, v] : record.attrs) {
    out += " ";
    out += k;
    out += "=";
    out += v;
  }
  return out;
}

Normalizer::Normalizer(const topology::Network& net,
                       obs::FeedHealthMonitor* feed_health)
    : net_(net), feed_health_(feed_health) {
  for (const topology::Layer1Device& d : net.layer1_devices()) {
    l1_by_name_.emplace(d.name, d.id);
  }
}

bool Normalizer::normalize(const RawRecord& raw, NormalizedRecord& out) const {
  if (!normalize_impl(raw, out)) {
    if (feed_health_) feed_health_->on_rejected(raw.source);
    return false;
  }
  if (feed_health_) {
    arrival_high_ = std::max(arrival_high_, out.utc);
    feed_health_->on_record(out.source, out.utc, arrival_high_);
  }
  return true;
}

bool Normalizer::normalize_impl(const RawRecord& raw,
                                NormalizedRecord& out) const {
  out = NormalizedRecord{};
  out.source = raw.source;
  out.field = raw.field;
  out.body = raw.body;
  out.value = raw.value;
  out.attrs = raw.attrs;
  switch (raw.source) {
    case SourceType::kSyslog: {
      std::string name = util::to_lower(raw.device);
      auto router = net_.find_router(name);
      if (!router) {
        ++dropped_;
        return false;
      }
      out.router = name;
      const topology::Router& r = net_.router(*router);
      out.utc = net_.pop(r.pop).timezone.to_utc(raw.timestamp);
      return true;
    }
    case SourceType::kSnmp: {
      std::string name = raw.device;
      if (auto dot = name.find('.'); dot != std::string::npos) {
        name.resize(dot);  // strip the poller's FQDN suffix
      }
      if (!net_.find_router(name)) {
        ++dropped_;
        return false;
      }
      out.router = name;
      auto it = raw.attrs.find("interface");
      if (it != raw.attrs.end()) out.interface = it->second;
      out.utc = raw.timestamp;  // SNMP poller stamps UTC
      return true;
    }
    case SourceType::kLayer1Log: {
      auto it = l1_by_name_.find(raw.device);
      if (it == l1_by_name_.end()) {
        ++dropped_;
        return false;
      }
      out.device = raw.device;
      const topology::Layer1Device& d = net_.layer1_device(it->second);
      out.utc = net_.pop(d.pop).timezone.to_utc(raw.timestamp);
      return true;
    }
    case SourceType::kTacacs:
    case SourceType::kWorkflowLog: {
      if (!net_.find_router(raw.device)) {
        ++dropped_;
        return false;
      }
      out.router = raw.device;
      out.utc = raw.timestamp;
      return true;
    }
    case SourceType::kOspfMon: {
      auto rit = raw.attrs.find("router");
      auto iit = raw.attrs.find("interface");
      if (rit == raw.attrs.end() || iit == raw.attrs.end() ||
          !net_.find_router(rit->second)) {
        ++dropped_;
        return false;
      }
      out.router = rit->second;
      out.interface = iit->second;
      out.utc = raw.timestamp;
      return true;
    }
    case SourceType::kBgpMon:
    case SourceType::kPerfMon:
    case SourceType::kCdnMon:
    case SourceType::kServerLog: {
      out.utc = raw.timestamp;
      return true;
    }
  }
  ++dropped_;
  return false;
}

std::vector<NormalizedRecord> Normalizer::normalize_stream(
    const telemetry::RecordStream& stream) const {
  std::vector<NormalizedRecord> out;
  out.reserve(stream.size());
  NormalizedRecord record;
  for (const RawRecord& raw : stream) {
    if (normalize(raw, record)) out.push_back(std::move(record));
  }
  // Content-deterministic order: ties on the timestamp are broken by the
  // record fields so extraction does not depend on arrival order.
  std::sort(out.begin(), out.end(),
            [](const NormalizedRecord& a, const NormalizedRecord& b) {
              return std::tie(a.utc, a.source, a.router, a.device, a.interface,
                              a.field, a.body, a.value) <
                     std::tie(b.utc, b.source, b.router, b.device, b.interface,
                              b.field, b.body, b.value);
            });
  return out;
}

}  // namespace grca::collector
